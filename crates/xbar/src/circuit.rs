//! Nonlinear DC operating-point solver for the parasitic crossbar.
//!
//! # Circuit topology
//!
//! Each cell `(i, j)` contributes two nodes: a word-line segment node
//! `w(i,j)` and a bit-line segment node `b(i,j)`. Branches:
//!
//! ```text
//! V_i --Rsource-- w(i,0) --Rwire-- w(i,1) --Rwire-- ... w(i,C-1)
//!                    |                |                    |
//!                  cell             cell                 cell        (1T1R)
//!                    |                |                    |
//! b(0,j) --Rwire-- b(1,j) -- ... -- b(R-1,j) --Rsink-- GND (virtual)
//! ```
//!
//! The sensed output of column `j` is the current through its sink
//! resistor.
//!
//! # Numerics
//!
//! Damped Newton–Raphson on the KCL residual. The Newton correction
//! system `J·dx = F` is solved either by an exact-tridiagonal block
//! Gauss–Seidel (the default — it exploits the fact that word lines
//! only couple horizontally and bit lines only vertically, so each
//! half-system is a set of independent tridiagonal chains solvable by
//! the Thomas algorithm) or by Jacobi-preconditioned CG on the
//! assembled sparse Jacobian (kept as a cross-validation path and
//! exposed for benchmarking).

use crate::cache::{thomas_apply, JacobianFactorization, SolverCache, WarmContext, WarmState};
use crate::conductance::ConductanceMatrix;
use crate::device::{
    AccessDevice, DeviceModel, FilamentaryRram, LinearMemristor, SeriesCell, SeriesLinearCell,
};
use crate::params::CrossbarParams;
use crate::XbarError;
use linalg::{conjugate_gradient, CgOptions, CsrMatrix, TripletMatrix};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Process-wide tile id source: every programmed [`CrossbarCircuit`]
/// gets a distinct id so trace events from concurrent tile solves can
/// be told apart (clones keep the id — they model the same tile).
static NEXT_TILE_ID: AtomicU64 = AtomicU64::new(1);

/// Telemetry handles resolved once so the per-solve cost is a handful
/// of relaxed atomic ops (and just the enabled-flag load when off).
pub(crate) struct CircuitMetrics {
    solves: Arc<telemetry::Counter>,
    solve_time: Arc<telemetry::Timer>,
    newton_iterations: Arc<telemetry::Histogram>,
    dampings: Arc<telemetry::Histogram>,
    warm_starts: Arc<telemetry::Counter>,
    cold_starts: Arc<telemetry::Counter>,
    cg_solves: Arc<telemetry::Counter>,
    cg_inner_iterations: Arc<telemetry::Histogram>,
    cg_final_residual: Arc<telemetry::Histogram>,
    amortized_solves: Arc<telemetry::Counter>,
    amortized_fallbacks: Arc<telemetry::Counter>,
    pub(crate) cache_hits: Arc<telemetry::Counter>,
    pub(crate) cache_misses: Arc<telemetry::Counter>,
    pub(crate) cache_rekeys: Arc<telemetry::Counter>,
}

pub(crate) fn metrics() -> &'static CircuitMetrics {
    static METRICS: OnceLock<CircuitMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CircuitMetrics {
        solves: telemetry::counter("xbar.solves"),
        solve_time: telemetry::timer("xbar.solve_seconds"),
        newton_iterations: telemetry::histogram(
            "xbar.newton_iterations",
            &telemetry::linear_buckets(0.0, 1.0, 16),
        ),
        dampings: telemetry::histogram(
            "xbar.newton_dampings",
            &telemetry::linear_buckets(0.0, 1.0, 8),
        ),
        warm_starts: telemetry::counter("xbar.warm_starts"),
        cold_starts: telemetry::counter("xbar.cold_starts"),
        cg_solves: telemetry::counter("xbar.cg.solves"),
        cg_inner_iterations: telemetry::histogram(
            "xbar.cg.inner_iterations",
            &telemetry::exponential_buckets(1.0, 2.0, 14),
        ),
        cg_final_residual: telemetry::histogram(
            "xbar.cg.final_residual",
            &telemetry::exponential_buckets(1e-18, 10.0, 12),
        ),
        amortized_solves: telemetry::counter("xbar.amortized.solves"),
        amortized_fallbacks: telemetry::counter("xbar.amortized.fallbacks"),
        cache_hits: telemetry::counter("xbar.cache.hits"),
        cache_misses: telemetry::counter("xbar.cache.misses"),
        cache_rekeys: telemetry::counter("xbar.cache.rekeys"),
    })
}

/// Which linear solver the Newton loop uses for its correction systems.
///
/// Both solve the same correction `J(x)·dx = F(x)` and both are
/// *inexact* inner solvers: the outer Newton loop accepts a step only
/// after re-evaluating the true KCL residual, so the choice affects
/// speed, never the converged answer (the conformance law
/// `oracle/solver_bgs_vs_cg` holds the two within `1e-9` relative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinearSolverKind {
    /// Block Gauss–Seidel with exact tridiagonal (Thomas) sweeps.
    /// Fast and always convergent for this topology (each half-system
    /// dominates the cell coupling in the PSD order).
    #[default]
    BlockGaussSeidel,
    /// Jacobi-preconditioned conjugate gradient on the assembled CSR
    /// Jacobian. Slower; used for cross-validation.
    ConjugateGradient,
}

/// Options controlling the Newton solve.
///
/// These are part of a circuit's *content* for amortization purposes:
/// [`CrossbarCircuit::solver_key`] folds them in, so circuits that
/// differ only in options never share cached solver state.
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonOptions {
    /// Absolute KCL residual tolerance in amperes (infinity norm).
    /// The enforced tolerance is this value floored by the f64
    /// cancellation noise of the circuit at hand — see
    /// [`CrossbarCircuit::effective_tolerance`].
    pub abs_tolerance: f64,
    /// Maximum Newton iterations.
    pub max_iterations: usize,
    /// Maximum step-halving attempts per iteration.
    pub max_dampings: usize,
    /// Linear solver for the correction systems.
    pub linear_solver: LinearSolverKind,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            abs_tolerance: 1e-13,
            max_iterations: 60,
            max_dampings: 30,
            linear_solver: LinearSolverKind::default(),
        }
    }
}

impl store::Canonical for NewtonOptions {
    fn canonicalize(&self, key: &mut store::KeyBuilder) {
        key.f64("abs_tolerance", self.abs_tolerance)
            .usize("max_iterations", self.max_iterations)
            .usize("max_dampings", self.max_dampings)
            .str(
                "linear_solver",
                match self.linear_solver {
                    LinearSolverKind::BlockGaussSeidel => "bgs",
                    LinearSolverKind::ConjugateGradient => "cg",
                },
            );
    }
}

/// Result of a crossbar operating-point solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Sensed bit-line currents, one per column (amperes).
    pub currents: Vec<f64>,
    /// All node voltages (word-line nodes first, then bit-line nodes).
    pub node_voltages: Vec<f64>,
    /// Newton iterations performed.
    pub newton_iterations: usize,
    /// Final KCL residual (infinity norm, amperes).
    pub residual_norm: f64,
    /// Total Newton step-halvings across all iterations.
    pub dampings: usize,
    /// Whether the solve was seeded from a previous operating point.
    pub warm_start: bool,
    /// Inner conjugate-gradient statistics; `None` unless the
    /// [`LinearSolverKind::ConjugateGradient`] path ran.
    pub cg: Option<CgStats>,
}

/// Aggregated inner conjugate-gradient statistics for one Newton solve.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CgStats {
    /// Correction systems solved by CG (one per Newton iteration).
    pub solves: usize,
    /// CG iterations summed over all correction solves.
    pub total_iterations: usize,
    /// CG iterations of the last correction solve.
    pub last_iterations: usize,
    /// Preconditioned-residual norm of the last correction solve.
    pub last_residual: f64,
}

/// The per-junction device, selected by [`crate::NonIdealityConfig`].
#[derive(Debug, Clone, Copy)]
enum Cell {
    Linear(LinearMemristor),
    Rram(FilamentaryRram),
    RramWithAccess(SeriesCell),
    LinearWithAccess(SeriesLinearCell),
}

impl Cell {
    #[inline]
    fn current(&self, v: f64) -> f64 {
        match self {
            Cell::Linear(d) => d.current(v),
            Cell::Rram(d) => d.current(v),
            Cell::RramWithAccess(d) => d.current(v),
            Cell::LinearWithAccess(d) => d.current(v),
        }
    }

    #[inline]
    fn di_dv(&self, v: f64) -> f64 {
        match self {
            Cell::Linear(d) => d.di_dv(v),
            Cell::Rram(d) => d.di_dv(v),
            Cell::RramWithAccess(d) => d.di_dv(v),
            Cell::LinearWithAccess(d) => d.di_dv(v),
        }
    }

    /// Current and differential conductance with an internal-node warm
    /// start (series cells only — two-terminal cells have no internal
    /// node and ignore `u`). See `device::SeriesPair::current_and_didv_warm`.
    #[inline]
    fn current_and_didv_warm(&self, v: f64, u: &mut f64) -> (f64, f64) {
        match self {
            Cell::Linear(d) => d.current_and_didv(v),
            Cell::Rram(d) => d.current_and_didv(v),
            Cell::RramWithAccess(d) => d.current_and_didv_warm(v, u),
            Cell::LinearWithAccess(d) => d.current_and_didv_warm(v, u),
        }
    }
}

/// A programmed, non-ideal crossbar ready to solve MVM operating points.
///
/// Construction captures the conductance state `G`; [`solve`] evaluates
/// `I_non_ideal(V)` for input voltage vectors. This mirrors real
/// hardware: devices are programmed once, then many input vectors are
/// applied.
///
/// [`solve`]: CrossbarCircuit::solve
#[derive(Debug, Clone)]
pub struct CrossbarCircuit {
    params: CrossbarParams,
    cells: Vec<Cell>,
    /// The programmed conductances, retained verbatim for content
    /// keying ([`Self::solver_key`]) — `cells` holds the compensated
    /// device state, not the programmed values.
    g_values: Vec<f64>,
    options: NewtonOptions,
    /// Process-unique tile id keying this circuit's trace events.
    tile_id: u64,
}

impl CrossbarCircuit {
    /// Programs a crossbar with conductance state `g`.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::Shape`] if `g` does not match the
    /// dimensions in `params`.
    pub fn new(params: &CrossbarParams, g: &ConductanceMatrix) -> Result<Self, XbarError> {
        Self::with_options(params, g, NewtonOptions::default())
    }

    /// Like [`CrossbarCircuit::new`] with explicit solver options.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::Shape`] if `g` does not match the
    /// dimensions in `params`.
    pub fn with_options(
        params: &CrossbarParams,
        g: &ConductanceMatrix,
        options: NewtonOptions,
    ) -> Result<Self, XbarError> {
        if g.rows() != params.rows || g.cols() != params.cols {
            return Err(XbarError::Shape(format!(
                "conductance matrix is {}x{} but crossbar is {}x{}",
                g.rows(),
                g.cols(),
                params.rows,
                params.cols
            )));
        }
        let cfg = params.nonideality;
        let dev = &params.device;
        // Programming is closed-loop in real arrays: a cell "programmed
        // to G" reads G *through* its access device at small signal.
        // When the access device is modelled, the memristor itself is
        // therefore programmed to the compensated conductance
        // g_m = G·g_acc / (g_acc - G), so the series small-signal
        // conductance equals G and the access device contributes only
        // its *nonlinearity* (plus large-signal compression).
        let compensate = |gij: f64| -> Result<f64, XbarError> {
            if gij >= dev.access_g {
                return Err(XbarError::InvalidParameter(format!(
                    "programmed conductance {gij} S is not reachable through \
                     an access device of {} S",
                    dev.access_g
                )));
            }
            Ok(gij * dev.access_g / (dev.access_g - gij))
        };
        let cells = g
            .as_slice()
            .iter()
            .map(|&gij| {
                Ok(match (cfg.device_nonlinearity, cfg.access_device) {
                    (false, false) => Cell::Linear(LinearMemristor::new(gij)),
                    (true, false) => Cell::Rram(FilamentaryRram::from_conductance(gij, dev)),
                    (true, true) => Cell::RramWithAccess(SeriesCell::new(
                        AccessDevice::new(dev.access_g, dev.access_v_sat),
                        FilamentaryRram::from_conductance(compensate(gij)?, dev),
                    )),
                    (false, true) => Cell::LinearWithAccess(SeriesLinearCell::new(
                        AccessDevice::new(dev.access_g, dev.access_v_sat),
                        LinearMemristor::new(compensate(gij)?),
                    )),
                })
            })
            .collect::<Result<Vec<_>, XbarError>>()?;
        Ok(CrossbarCircuit {
            params: params.clone(),
            cells,
            g_values: g.as_slice().to_vec(),
            options,
            tile_id: NEXT_TILE_ID.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// Content key identifying everything the solver's cached state
    /// depends on: the design parameters (including device model and
    /// non-ideality configuration), the programmed conductance matrix,
    /// and the Newton options.
    ///
    /// Two circuits with equal keys are interchangeable for solving —
    /// [`SolverCache`]s key their factorizations and warm starts by
    /// this value, and the process-wide factorization registry shares
    /// entries across instances with matching keys. The `tile_id` is
    /// deliberately excluded: it identifies the *instance* for tracing,
    /// not the content.
    pub fn solver_key(&self) -> store::Key {
        let mut key = store::KeyBuilder::new(*b"solv");
        key.nested("params", &self.params)
            .f64_slice("g", &self.g_values)
            .nested("newton", &self.options);
        key.finish()
    }

    /// The design parameters this circuit was built with.
    pub fn params(&self) -> &CrossbarParams {
        &self.params
    }

    /// Process-unique id of this programmed tile; trace events from
    /// this circuit's solves carry it as the `tile` attribute.
    pub fn tile_id(&self) -> u64 {
        self.tile_id
    }

    #[inline]
    fn rows(&self) -> usize {
        self.params.rows
    }

    #[inline]
    fn cols(&self) -> usize {
        self.params.cols
    }

    #[inline]
    fn w_idx(&self, i: usize, j: usize) -> usize {
        i * self.cols() + j
    }

    #[inline]
    fn b_idx(&self, i: usize, j: usize) -> usize {
        self.rows() * self.cols() + i * self.cols() + j
    }

    #[inline]
    fn cell(&self, i: usize, j: usize) -> &Cell {
        &self.cells[i * self.cols() + j]
    }

    /// Solves the DC operating point for input voltages `v`.
    ///
    /// # Errors
    ///
    /// * [`XbarError::Shape`] if `v.len() != rows`.
    /// * [`XbarError::OutOfRange`] if `v` contains non-finite entries.
    /// * [`XbarError::NewtonDiverged`] if the Newton iteration fails
    ///   to reach tolerance.
    pub fn solve(&self, v: &[f64]) -> Result<SolveReport, XbarError> {
        self.solve_with_guess(v, None)
    }

    /// Like [`solve`](CrossbarCircuit::solve) but seeding Newton from a
    /// previous operating point's node voltages. Sequences of related
    /// stimuli (the functional simulator's stream batches) converge in
    /// 1–2 iterations from a warm start instead of 4–6 from cold.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](CrossbarCircuit::solve); a wrong-length guess
    /// is an additional [`XbarError::Shape`].
    pub fn solve_with_guess(
        &self,
        v: &[f64],
        guess: Option<&[f64]>,
    ) -> Result<SolveReport, XbarError> {
        let (rows, cols) = (self.rows(), self.cols());
        if v.len() != rows {
            return Err(XbarError::Shape(format!(
                "{} input voltages for {rows} word lines",
                v.len()
            )));
        }
        if !v.iter().all(|x| x.is_finite()) {
            return Err(XbarError::OutOfRange("input voltage is non-finite".into()));
        }

        let t_start = telemetry::enabled().then(Instant::now);
        // Raw trace scope (not `telemetry::span`): solves run millions
        // of times, so the per-solve path must not allocate span paths
        // or register timers. The RAII guard also closes the trace
        // span on every error return below.
        let tracing = telemetry::trace_active();
        let _trace = tracing.then(|| {
            telemetry::trace_scope(
                "xbar.solve",
                vec![
                    ("tile".to_string(), telemetry::Json::from(self.tile_id)),
                    ("rows".to_string(), telemetry::Json::from(rows)),
                    ("cols".to_string(), telemetry::Json::from(cols)),
                    ("warm".to_string(), telemetry::Json::Bool(guess.is_some())),
                ],
            )
        });

        if !self.params.nonideality.parasitics {
            let report = self.solve_without_parasitics(v);
            if let Some(t) = t_start {
                let m = metrics();
                m.solves.inc();
                m.solve_time.record(t.elapsed());
                m.newton_iterations.observe(0.0);
            }
            return Ok(report);
        }

        let n = 2 * rows * cols;
        // Initial guess: a caller-provided previous solution, or word
        // lines at their driven voltage with bit lines at virtual
        // ground.
        let mut x = vec![0.0; n];
        match guess {
            Some(g) => {
                if g.len() != n {
                    return Err(XbarError::Shape(format!(
                        "warm-start guess has {} entries for {n} nodes",
                        g.len()
                    )));
                }
                x.copy_from_slice(g);
            }
            None => {
                for i in 0..rows {
                    for j in 0..cols {
                        x[self.w_idx(i, j)] = v[i];
                    }
                }
            }
        }

        let mut residual = vec![0.0; n];
        self.kcl_residual(v, &x, &mut residual);
        let mut res_norm = linalg::vec_ops::norm_inf(&residual);

        let tolerance = self.effective_tolerance(v);

        let mut iterations = 0;
        let mut dampings_total = 0usize;
        let mut cg_stats: Option<CgStats> = None;
        while res_norm > tolerance && iterations < self.options.max_iterations {
            let dx = self.solve_correction(&x, &residual, &mut cg_stats)?;
            // Damped update: halve the step until the residual shrinks.
            let mut scale = 1.0;
            let mut accepted = false;
            let mut trial = vec![0.0; n];
            let mut trial_res = vec![0.0; n];
            for _ in 0..=self.options.max_dampings {
                for k in 0..n {
                    trial[k] = x[k] - scale * dx[k];
                }
                self.kcl_residual(v, &trial, &mut trial_res);
                let trial_norm = linalg::vec_ops::norm_inf(&trial_res);
                if trial_norm < res_norm || trial_norm <= tolerance {
                    x.copy_from_slice(&trial);
                    residual.copy_from_slice(&trial_res);
                    res_norm = trial_norm;
                    accepted = true;
                    break;
                }
                scale *= 0.5;
                dampings_total += 1;
            }
            if !accepted {
                return Err(XbarError::NewtonDiverged {
                    iterations,
                    residual_norm: res_norm,
                });
            }
            iterations += 1;
            if tracing {
                // Per-iteration convergence trace: residual vs. iter,
                // keyed by tile, visible as instants under the solve
                // span.
                telemetry::trace_instant(
                    "xbar.newton_iter",
                    vec![
                        ("tile".to_string(), telemetry::Json::from(self.tile_id)),
                        ("iter".to_string(), telemetry::Json::from(iterations)),
                        ("residual".to_string(), telemetry::Json::Num(res_norm)),
                    ],
                );
            }
        }

        if res_norm > tolerance {
            return Err(XbarError::NewtonDiverged {
                iterations,
                residual_norm: res_norm,
            });
        }

        let g_sink = 1.0 / self.params.r_sink;
        let currents = (0..cols)
            .map(|j| g_sink * x[self.b_idx(rows - 1, j)])
            .collect();
        if let Some(t) = t_start {
            let m = metrics();
            m.solves.inc();
            m.solve_time.record(t.elapsed());
            m.newton_iterations.observe(iterations as f64);
            m.dampings.observe(dampings_total as f64);
            if guess.is_some() {
                m.warm_starts.inc();
            } else {
                m.cold_starts.inc();
            }
        }
        Ok(SolveReport {
            currents,
            node_voltages: x,
            newton_iterations: iterations,
            residual_norm: res_norm,
            dampings: dampings_total,
            warm_start: guess.is_some(),
            cg: cg_stats,
        })
    }

    /// Fast path when parasitics are disabled: every cell sees exactly
    /// its row's input voltage, so columns decouple.
    fn solve_without_parasitics(&self, v: &[f64]) -> SolveReport {
        let (rows, cols) = (self.rows(), self.cols());
        let mut currents = vec![0.0; cols];
        for i in 0..rows {
            for j in 0..cols {
                currents[j] += self.cell(i, j).current(v[i]);
            }
        }
        let mut node_voltages = vec![0.0; 2 * rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                node_voltages[self.w_idx(i, j)] = v[i];
            }
        }
        SolveReport {
            currents,
            node_voltages,
            newton_iterations: 0,
            residual_norm: 0.0,
            dampings: 0,
            warm_start: false,
            cg: None,
        }
    }

    /// The KCL residual tolerance (amperes, infinity norm) the Newton
    /// loop enforces for inputs `v`.
    ///
    /// The residual is a sum of branch currents of magnitude up to
    /// `g_max * v_max`, so f64 cancellation leaves a noise floor
    /// proportional to that scale; convergence is never demanded below
    /// it. Exposed so external checkers (the conformance suite) can
    /// hold a [`SolveReport`] to exactly the bound the solver promised.
    pub fn effective_tolerance(&self, v: &[f64]) -> f64 {
        let g_max = (1.0 / self.params.r_wire)
            .max(1.0 / self.params.r_source)
            .max(1.0 / self.params.r_sink);
        let v_max = v.iter().fold(0.0f64, |a, &b| a.max(b.abs())).max(1e-6);
        self.options
            .abs_tolerance
            .max(64.0 * f64::EPSILON * g_max * v_max)
    }

    /// Recomputes the infinity-norm KCL residual of candidate node
    /// voltages `x` (layout as in [`SolveReport::node_voltages`]) under
    /// inputs `v`, independently of any solver bookkeeping.
    ///
    /// A converged [`SolveReport`] must satisfy
    /// `verify_kcl(v, &report.node_voltages) <= effective_tolerance(v)`.
    ///
    /// # Errors
    ///
    /// [`XbarError::Shape`] if `v.len() != rows` or
    /// `x.len() != 2 * rows * cols`.
    pub fn verify_kcl(&self, v: &[f64], x: &[f64]) -> Result<f64, XbarError> {
        let (rows, cols) = (self.rows(), self.cols());
        if v.len() != rows {
            return Err(XbarError::Shape(format!(
                "{} input voltages for {rows} word lines",
                v.len()
            )));
        }
        let n = 2 * rows * cols;
        if x.len() != n {
            return Err(XbarError::Shape(format!(
                "{} node voltages for {n} nodes",
                x.len()
            )));
        }
        if !self.params.nonideality.parasitics {
            // No parasitic network: the operating point is closed-form
            // and the residual notion is vacuous.
            return Ok(0.0);
        }
        let mut residual = vec![0.0; n];
        self.kcl_residual(v, x, &mut residual);
        Ok(linalg::vec_ops::norm_inf(&residual))
    }

    /// KCL residual `F(x)`: net current leaving each node.
    fn kcl_residual(&self, v: &[f64], x: &[f64], out: &mut [f64]) {
        let (rows, cols) = (self.rows(), self.cols());
        let g_src = 1.0 / self.params.r_source;
        let g_snk = 1.0 / self.params.r_sink;
        let g_w = 1.0 / self.params.r_wire;
        out.fill(0.0);

        for i in 0..rows {
            // Source into the first word-line segment.
            let w0 = self.w_idx(i, 0);
            out[w0] += g_src * (x[w0] - v[i]);
            // Word-line wire segments.
            for j in 0..cols.saturating_sub(1) {
                let a = self.w_idx(i, j);
                let b = self.w_idx(i, j + 1);
                let iw = g_w * (x[a] - x[b]);
                out[a] += iw;
                out[b] -= iw;
            }
        }
        for j in 0..cols {
            // Bit-line wire segments.
            for i in 0..rows.saturating_sub(1) {
                let a = self.b_idx(i, j);
                let b = self.b_idx(i + 1, j);
                let iw = g_w * (x[a] - x[b]);
                out[a] += iw;
                out[b] -= iw;
            }
            // Sink from the last bit-line segment to virtual ground.
            let bl = self.b_idx(rows - 1, j);
            out[bl] += g_snk * x[bl];
        }
        // Cross-point devices.
        for i in 0..rows {
            for j in 0..cols {
                let wn = self.w_idx(i, j);
                let bn = self.b_idx(i, j);
                let idev = self.cell(i, j).current(x[wn] - x[bn]);
                out[wn] += idev;
                out[bn] -= idev;
            }
        }
    }

    /// [`Self::kcl_residual`] with per-cell internal-node warm starts
    /// and a free Jacobian refresh:
    ///
    /// * `u[i * cols + j]` carries the series cell's internal voltage
    ///   from the previous evaluation into the next one (NaN = no
    ///   guess), so the per-cell scalar Newton converges in 1–2
    ///   iterations across the amortized loop's repeated evaluations
    ///   and across consecutive batch samples.
    /// * `gd[i * cols + j]` receives each cell's differential
    ///   conductance at this operating point — a byproduct of the same
    ///   internal solve that produced the current, so the amortized
    ///   Newton loop gets a fresh Jacobian without the second
    ///   per-cell device solve the cold path pays.
    ///
    /// The residual values themselves match `kcl_residual` to the
    /// device solver's tolerance.
    pub(crate) fn kcl_residual_warm(
        &self,
        v: &[f64],
        x: &[f64],
        out: &mut [f64],
        u: &mut [f64],
        gd: &mut [f64],
    ) {
        let (rows, cols) = (self.rows(), self.cols());
        let g_src = 1.0 / self.params.r_source;
        let g_snk = 1.0 / self.params.r_sink;
        let g_w = 1.0 / self.params.r_wire;
        out.fill(0.0);

        for i in 0..rows {
            let w0 = self.w_idx(i, 0);
            out[w0] += g_src * (x[w0] - v[i]);
            for j in 0..cols.saturating_sub(1) {
                let a = self.w_idx(i, j);
                let b = self.w_idx(i, j + 1);
                let iw = g_w * (x[a] - x[b]);
                out[a] += iw;
                out[b] -= iw;
            }
        }
        for j in 0..cols {
            for i in 0..rows.saturating_sub(1) {
                let a = self.b_idx(i, j);
                let b = self.b_idx(i + 1, j);
                let iw = g_w * (x[a] - x[b]);
                out[a] += iw;
                out[b] -= iw;
            }
            let bl = self.b_idx(rows - 1, j);
            out[bl] += g_snk * x[bl];
        }
        for i in 0..rows {
            for j in 0..cols {
                let wn = self.w_idx(i, j);
                let bn = self.b_idx(i, j);
                let (idev, g) = self
                    .cell(i, j)
                    .current_and_didv_warm(x[wn] - x[bn], &mut u[i * cols + j]);
                out[wn] += idev;
                out[bn] -= idev;
                gd[i * cols + j] = g;
            }
        }
    }

    /// Solves the Newton correction system `J(x) dx = F`, folding
    /// inner-solver statistics into `cg_stats` on the CG path.
    fn solve_correction(
        &self,
        x: &[f64],
        f: &[f64],
        cg_stats: &mut Option<CgStats>,
    ) -> Result<Vec<f64>, XbarError> {
        match self.options.linear_solver {
            LinearSolverKind::BlockGaussSeidel => self.block_gauss_seidel(x, f),
            LinearSolverKind::ConjugateGradient => {
                let jac = self.assemble_jacobian(x)?;
                let sol = conjugate_gradient(
                    &jac,
                    f,
                    &CgOptions {
                        tolerance: 1e-12,
                        max_iterations: Some(20_000),
                        initial_guess: None,
                    },
                )?;
                let stats = cg_stats.get_or_insert_with(CgStats::default);
                stats.solves += 1;
                stats.total_iterations += sol.iterations;
                stats.last_iterations = sol.iterations;
                stats.last_residual = sol.residual;
                if telemetry::enabled() {
                    let m = metrics();
                    m.cg_solves.inc();
                    m.cg_inner_iterations.observe(sol.iterations as f64);
                    m.cg_final_residual.observe(sol.residual);
                }
                Ok(sol.x)
            }
        }
    }

    /// Assembles the sparse Jacobian at `x` (CG path and tests).
    fn assemble_jacobian(&self, x: &[f64]) -> Result<CsrMatrix, XbarError> {
        let (rows, cols) = (self.rows(), self.cols());
        let n = 2 * rows * cols;
        let g_src = 1.0 / self.params.r_source;
        let g_snk = 1.0 / self.params.r_sink;
        let g_w = 1.0 / self.params.r_wire;
        let mut t = TripletMatrix::with_capacity(n, n, 8 * rows * cols);

        for i in 0..rows {
            t.add(self.w_idx(i, 0), self.w_idx(i, 0), g_src);
            for j in 0..cols.saturating_sub(1) {
                let a = self.w_idx(i, j);
                let b = self.w_idx(i, j + 1);
                t.add(a, a, g_w);
                t.add(b, b, g_w);
                t.add(a, b, -g_w);
                t.add(b, a, -g_w);
            }
        }
        for j in 0..cols {
            for i in 0..rows.saturating_sub(1) {
                let a = self.b_idx(i, j);
                let b = self.b_idx(i + 1, j);
                t.add(a, a, g_w);
                t.add(b, b, g_w);
                t.add(a, b, -g_w);
                t.add(b, a, -g_w);
            }
            let bl = self.b_idx(rows - 1, j);
            t.add(bl, bl, g_snk);
        }
        for i in 0..rows {
            for j in 0..cols {
                let wn = self.w_idx(i, j);
                let bn = self.b_idx(i, j);
                let gd = self.cell(i, j).di_dv(x[wn] - x[bn]);
                t.add(wn, wn, gd);
                t.add(bn, bn, gd);
                t.add(wn, bn, -gd);
                t.add(bn, wn, -gd);
            }
        }
        Ok(CsrMatrix::from_triplets(&t)?)
    }

    /// Block Gauss–Seidel on the Newton system.
    ///
    /// The Jacobian has the 2x2 block form `[A, -D; -D, B]` where `D`
    /// is the diagonal of cell conductances, `A` decomposes into one
    /// independent tridiagonal chain per word line and `B` into one per
    /// bit line. Each half-solve is exact (Thomas algorithm); the
    /// iteration `w <- A^{-1}(f_w + D b)`, `b <- B^{-1}(f_b + D w)`
    /// contracts because `A ⪰ D` and `B ⪰ D` in the PSD order.
    fn block_gauss_seidel(&self, x: &[f64], f: &[f64]) -> Result<Vec<f64>, XbarError> {
        let (rows, cols) = (self.rows(), self.cols());
        let half = rows * cols;

        // Cell differential conductances at the linearization point.
        let mut gd = vec![0.0; half];
        for i in 0..rows {
            for j in 0..cols {
                gd[i * cols + j] = self
                    .cell(i, j)
                    .di_dv(x[self.w_idx(i, j)] - x[self.b_idx(i, j)]);
            }
        }
        self.block_gauss_seidel_with_gd(&gd, f)
    }

    /// [`Self::block_gauss_seidel`] with the per-cell differential
    /// conductances supplied by the caller — the amortized path feeds
    /// in the `gd` byproduct of its last residual evaluation
    /// ([`Self::kcl_residual_warm`]), getting an exact-Jacobian
    /// correction without a second device solve per cell.
    fn block_gauss_seidel_with_gd(&self, gd: &[f64], f: &[f64]) -> Result<Vec<f64>, XbarError> {
        let (rows, cols) = (self.rows(), self.cols());
        let half = rows * cols;
        let g_src = 1.0 / self.params.r_source;
        let g_snk = 1.0 / self.params.r_sink;
        let g_w = 1.0 / self.params.r_wire;

        // Tridiagonal diagonals for each word-line chain (off-diagonals
        // are all -g_w) and each bit-line chain.
        let w_diag = |i: usize, j: usize| -> f64 {
            let mut d = gd[i * cols + j];
            if j == 0 {
                d += g_src;
            }
            if j > 0 {
                d += g_w;
            }
            if j + 1 < cols {
                d += g_w;
            }
            d
        };
        let b_diag = |i: usize, j: usize| -> f64 {
            let mut d = gd[i * cols + j];
            if i == rows - 1 {
                d += g_snk;
            }
            if i > 0 {
                d += g_w;
            }
            if i + 1 < rows {
                d += g_w;
            }
            d
        };

        let mut dw = vec![0.0; half];
        let mut db = vec![0.0; half];
        let mut rhs = vec![0.0; cols.max(rows)];
        let mut sol = vec![0.0; cols.max(rows)];
        let mut scratch = vec![0.0; cols.max(rows)];

        // Convergence is measured on the change in the iterate; the
        // outer Newton loop re-verifies the true KCL residual, so the
        // correction only needs inexact-Newton accuracy (relative to
        // the first sweep's step size).
        let max_sweeps = 500;
        let mut first_delta = 0.0f64;
        for sweep in 0..max_sweeps {
            let mut delta: f64 = 0.0;
            // w-half: one tridiagonal solve per word line.
            for i in 0..rows {
                for j in 0..cols {
                    rhs[j] = f[self.w_idx(i, j)] + gd[i * cols + j] * db[i * cols + j];
                }
                thomas_solve(
                    cols,
                    |j| w_diag(i, j),
                    -g_w,
                    &rhs[..cols],
                    &mut sol[..cols],
                    &mut scratch[..cols],
                );
                for j in 0..cols {
                    let idx = i * cols + j;
                    delta = delta.max((sol[j] - dw[idx]).abs());
                    dw[idx] = sol[j];
                }
            }
            // b-half: one tridiagonal solve per bit line.
            for j in 0..cols {
                for i in 0..rows {
                    rhs[i] = f[self.b_idx(i, j)] + gd[i * cols + j] * dw[i * cols + j];
                }
                thomas_solve(
                    rows,
                    |i| b_diag(i, j),
                    -g_w,
                    &rhs[..rows],
                    &mut sol[..rows],
                    &mut scratch[..rows],
                );
                for i in 0..rows {
                    let idx = i * cols + j;
                    delta = delta.max((sol[i] - db[idx]).abs());
                    db[idx] = sol[i];
                }
            }
            if sweep == 0 {
                first_delta = delta;
            }
            // Inexact-Newton stop: the correction direction is accurate
            // enough once sweeps refine it below 1e-8 of its own scale
            // (absolute femtovolt floor for already-converged points).
            if delta < 1e-15 + 1e-8 * first_delta {
                break;
            }
            if sweep == max_sweeps - 1 {
                return Err(XbarError::Numerical(
                    "block gauss-seidel failed to contract".into(),
                ));
            }
        }

        let mut dx = vec![0.0; 2 * half];
        dx[..half].copy_from_slice(&dw);
        dx[half..].copy_from_slice(&db);
        Ok(dx)
    }

    /// Builds the frozen Block-Gauss–Seidel operator at zero bias: the
    /// per-cell small-signal conductances plus the Thomas factors of
    /// every word-line and bit-line chain (see
    /// [`JacobianFactorization`]). Called through
    /// [`SolverCache::for_circuit`] and the process-wide registry; not
    /// per solve.
    pub(crate) fn factorize(&self) -> JacobianFactorization {
        let (rows, cols) = (self.rows(), self.cols());
        let half = rows * cols;
        let g_src = 1.0 / self.params.r_source;
        let g_snk = 1.0 / self.params.r_sink;
        let g_w = 1.0 / self.params.r_wire;
        let off = -g_w;

        // Zero-bias linearization: dI/dV(0) of a calibrated cell is its
        // programmed small-signal conductance, independent of inputs.
        let mut gd = vec![0.0; half];
        for (cell, g) in self.cells.iter().zip(gd.iter_mut()) {
            *g = cell.di_dv(0.0);
        }

        let w_diag = |i: usize, j: usize| -> f64 {
            let mut d = gd[i * cols + j];
            if j == 0 {
                d += g_src;
            }
            if j > 0 {
                d += g_w;
            }
            if j + 1 < cols {
                d += g_w;
            }
            d
        };
        let b_diag = |i: usize, j: usize| -> f64 {
            let mut d = gd[i * cols + j];
            if i == rows - 1 {
                d += g_snk;
            }
            if i > 0 {
                d += g_w;
            }
            if i + 1 < rows {
                d += g_w;
            }
            d
        };

        // Forward elimination per chain, storing reciprocal pivots so
        // the apply path is multiply-only (same recurrence as
        // `thomas_solve`, divisions hoisted to build time).
        let mut w_inv_denom = vec![0.0; half];
        let mut w_c_prime = vec![0.0; half];
        for i in 0..rows {
            let base = i * cols;
            let mut denom = w_diag(i, 0);
            w_inv_denom[base] = 1.0 / denom;
            w_c_prime[base] = off / denom;
            for j in 1..cols {
                denom = w_diag(i, j) - off * w_c_prime[base + j - 1];
                w_inv_denom[base + j] = 1.0 / denom;
                w_c_prime[base + j] = off / denom;
            }
        }
        // Bit-line chains run down a column, so their factors are
        // stored chain-major (`j * rows + i`) for contiguous access.
        let mut b_inv_denom = vec![0.0; half];
        let mut b_c_prime = vec![0.0; half];
        for j in 0..cols {
            let base = j * rows;
            let mut denom = b_diag(0, j);
            b_inv_denom[base] = 1.0 / denom;
            b_c_prime[base] = off / denom;
            for i in 1..rows {
                denom = b_diag(i, j) - off * b_c_prime[base + i - 1];
                b_inv_denom[base + i] = 1.0 / denom;
                b_c_prime[base + i] = off / denom;
            }
        }

        JacobianFactorization {
            rows,
            cols,
            gd,
            w_inv_denom,
            w_c_prime,
            b_inv_denom,
            b_c_prime,
        }
    }

    /// [`Self::block_gauss_seidel`] against a prefactorized operator:
    /// the same sweep structure and the same inexact-Newton stopping
    /// rule, but no device-model evaluations (the linearization is
    /// frozen in `fact`) and no divisions (the Thomas pivots are
    /// cached as reciprocals).
    fn block_gauss_seidel_frozen(
        &self,
        fact: &JacobianFactorization,
        f: &[f64],
    ) -> Result<Vec<f64>, XbarError> {
        let (rows, cols) = (self.rows(), self.cols());
        let half = rows * cols;
        let off = -1.0 / self.params.r_wire;
        let gd = &fact.gd;

        let mut dw = vec![0.0; half];
        let mut db = vec![0.0; half];
        let mut rhs = vec![0.0; cols.max(rows)];
        let mut sol = vec![0.0; cols.max(rows)];

        let max_sweeps = 500;
        let mut first_delta = 0.0f64;
        for sweep in 0..max_sweeps {
            let mut delta: f64 = 0.0;
            // w-half: one prefactorized tridiagonal apply per word line.
            for i in 0..rows {
                let base = i * cols;
                for j in 0..cols {
                    rhs[j] = f[self.w_idx(i, j)] + gd[base + j] * db[base + j];
                }
                thomas_apply(
                    &fact.w_inv_denom[base..base + cols],
                    &fact.w_c_prime[base..base + cols],
                    off,
                    &rhs[..cols],
                    &mut sol[..cols],
                );
                for j in 0..cols {
                    let idx = base + j;
                    delta = delta.max((sol[j] - dw[idx]).abs());
                    dw[idx] = sol[j];
                }
            }
            // b-half: one prefactorized tridiagonal apply per bit line.
            for j in 0..cols {
                let base = j * rows;
                for i in 0..rows {
                    rhs[i] = f[self.b_idx(i, j)] + gd[i * cols + j] * dw[i * cols + j];
                }
                thomas_apply(
                    &fact.b_inv_denom[base..base + rows],
                    &fact.b_c_prime[base..base + rows],
                    off,
                    &rhs[..rows],
                    &mut sol[..rows],
                );
                for i in 0..rows {
                    let idx = i * cols + j;
                    delta = delta.max((sol[i] - db[idx]).abs());
                    db[idx] = sol[i];
                }
            }
            if sweep == 0 {
                first_delta = delta;
            }
            if delta < 1e-15 + 1e-8 * first_delta {
                break;
            }
            if sweep == max_sweeps - 1 {
                return Err(XbarError::Numerical(
                    "frozen block gauss-seidel failed to contract".into(),
                ));
            }
        }

        let mut dx = vec![0.0; 2 * half];
        dx[..half].copy_from_slice(&dw);
        dx[half..].copy_from_slice(&db);
        Ok(dx)
    }

    /// Like [`solve`](Self::solve), amortizing the per-solve setup
    /// through `cache`: the Newton corrections reuse the cached frozen
    /// factorization (no per-iteration device linearization or
    /// refactorization) and the iteration warm-starts from the previous
    /// converged sample's node voltages.
    ///
    /// # Correctness contract
    ///
    /// The frozen operator only *proposes* correction directions; every
    /// step is damped and accepted against the **true** KCL residual,
    /// and convergence is declared by the same
    /// [`effective_tolerance`](Self::effective_tolerance) test as the
    /// cold path — so an accepted solve is exactly as converged as a
    /// cold one (the `oracle/solver_amortized_vs_cold` conformance law
    /// holds the two within solver tolerance; a warm start from an
    /// already-converged point returns bit-identically — see
    /// `oracle/solver_warm_start_fixed_point`). If the chord iteration
    /// stalls — possible in principle far from zero bias, where the
    /// frozen linearization is a poor chord — the solve transparently
    /// falls back to the exact cold path (counted by the telemetry
    /// counter `xbar.amortized.fallbacks`, observed never to fire on
    /// the paper's workloads).
    ///
    /// The cache re-keys itself if `self`'s content changed since it
    /// was built (see [`SolverCache`]); on any error the warm start is
    /// dropped so a failed sample cannot seed the next.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve).
    pub fn solve_amortized(
        &self,
        v: &[f64],
        cache: &mut SolverCache,
    ) -> Result<SolveReport, XbarError> {
        let (rows, cols) = (self.rows(), self.cols());
        if v.len() != rows {
            return Err(XbarError::Shape(format!(
                "{} input voltages for {rows} word lines",
                v.len()
            )));
        }
        if !v.iter().all(|x| x.is_finite()) {
            return Err(XbarError::OutOfRange("input voltage is non-finite".into()));
        }
        cache.ensure(self);

        let t_start = telemetry::enabled().then(Instant::now);
        let tracing = telemetry::trace_active();
        let warm = cache.take_warm();
        let _trace = tracing.then(|| {
            telemetry::trace_scope(
                "xbar.solve_amortized",
                vec![
                    ("tile".to_string(), telemetry::Json::from(self.tile_id)),
                    ("rows".to_string(), telemetry::Json::from(rows)),
                    ("cols".to_string(), telemetry::Json::from(cols)),
                    ("warm".to_string(), telemetry::Json::Bool(warm.is_some())),
                ],
            )
        });

        if !self.params.nonideality.parasitics {
            let report = self.solve_without_parasitics(v);
            if let Some(t) = t_start {
                let m = metrics();
                m.solves.inc();
                m.amortized_solves.inc();
                m.solve_time.record(t.elapsed());
                m.newton_iterations.observe(0.0);
            }
            return Ok(report);
        }

        let n = 2 * rows * cols;
        let fact = cache.factorization().clone();
        // Per-cell internal-node voltages, carried across evaluations
        // and across samples: warm-starts each series cell's scalar
        // Newton (the dominant per-evaluation cost on 1T1R cells).
        let mut u = cache.take_internal(rows * cols);
        let mut x = vec![0.0; n];
        let warm_started = match &warm {
            Some(w) if w.x.len() == n => {
                x.copy_from_slice(&w.x);
                true
            }
            _ => {
                for i in 0..rows {
                    for j in 0..cols {
                        x[self.w_idx(i, j)] = v[i];
                    }
                }
                false
            }
        };

        let half = rows * cols;
        let mut residual = vec![0.0; n];
        // `gd` tracks the per-cell differential conductances at the
        // accepted iterate `x` — refreshed for free by every residual
        // evaluation (`trial_gd` holds the candidate's until accepted).
        let mut gd = vec![0.0; half];
        let mut trial_gd = vec![0.0; half];
        // With a full warm context the initial residual needs no device
        // evaluation at all: the inputs enter `F` only through the
        // driver source terms `g_src (x - v_i)`, so the previous
        // residual transfers to the new inputs in O(rows). The
        // adjustment cap bounds accumulated driver-node rounding (each
        // pass adds ~1 ulp; 32 of them stay ~1e-17 A, five orders
        // below the solve tolerance).
        let mut adjustments = 0u32;
        let mut reused_residual = false;
        if warm_started {
            if let Some(ctx) = warm.and_then(|w| w.context) {
                if ctx.v.len() == rows
                    && ctx.residual.len() == n
                    && ctx.gd.len() == half
                    && ctx.adjustments < 32
                {
                    residual = ctx.residual;
                    gd = ctx.gd;
                    let g_src = 1.0 / self.params.r_source;
                    for (i, (&v_old, &v_new)) in ctx.v.iter().zip(v).enumerate() {
                        residual[self.w_idx(i, 0)] += g_src * (v_old - v_new);
                    }
                    adjustments = ctx.adjustments + 1;
                    reused_residual = true;
                }
            }
        }
        if !reused_residual {
            self.kcl_residual_warm(v, &x, &mut residual, &mut u, &mut gd);
        }
        let mut res_norm = linalg::vec_ops::norm_inf(&residual);
        let tolerance = self.effective_tolerance(v);

        let mut iterations = 0;
        let mut dampings_total = 0usize;
        while res_norm > tolerance && iterations < self.options.max_iterations {
            // First correction on a cold start: the cached
            // input-independent frozen factorization (multiply-only,
            // shared across tiles). Every other correction: the exact
            // Jacobian refreshed from the last residual evaluation's
            // free `gd` byproduct — when the residual was transferred
            // from the previous sample, `gd` is already exact at `x`,
            // so even the first step is a true Newton step rather than
            // a chord step (worth a whole outer iteration per sample).
            let correction = if iterations == 0 && !reused_residual {
                self.block_gauss_seidel_frozen(&fact, &residual)
            } else {
                self.block_gauss_seidel_with_gd(&gd, &residual)
            };
            let dx = match correction {
                Ok(dx) => dx,
                Err(_) => {
                    cache.set_internal(u);
                    return self.amortized_fallback(v, &x, cache);
                }
            };
            let mut scale = 1.0;
            let mut accepted = false;
            let mut trial = vec![0.0; n];
            let mut trial_res = vec![0.0; n];
            for _ in 0..=self.options.max_dampings {
                for k in 0..n {
                    trial[k] = x[k] - scale * dx[k];
                }
                self.kcl_residual_warm(v, &trial, &mut trial_res, &mut u, &mut trial_gd);
                let trial_norm = linalg::vec_ops::norm_inf(&trial_res);
                if trial_norm < res_norm || trial_norm <= tolerance {
                    x.copy_from_slice(&trial);
                    residual.copy_from_slice(&trial_res);
                    std::mem::swap(&mut gd, &mut trial_gd);
                    res_norm = trial_norm;
                    accepted = true;
                    break;
                }
                scale *= 0.5;
                dampings_total += 1;
            }
            if !accepted {
                cache.set_internal(u);
                return self.amortized_fallback(v, &x, cache);
            }
            iterations += 1;
            if tracing {
                telemetry::trace_instant(
                    "xbar.newton_iter",
                    vec![
                        ("tile".to_string(), telemetry::Json::from(self.tile_id)),
                        ("iter".to_string(), telemetry::Json::from(iterations)),
                        ("residual".to_string(), telemetry::Json::Num(res_norm)),
                    ],
                );
            }
        }

        if res_norm > tolerance {
            cache.set_internal(u);
            return self.amortized_fallback(v, &x, cache);
        }

        let g_sink = 1.0 / self.params.r_sink;
        let currents = (0..cols)
            .map(|j| g_sink * x[self.b_idx(rows - 1, j)])
            .collect();
        if let Some(t) = t_start {
            let m = metrics();
            m.solves.inc();
            m.amortized_solves.inc();
            m.solve_time.record(t.elapsed());
            m.newton_iterations.observe(iterations as f64);
            m.dampings.observe(dampings_total as f64);
            if warm_started {
                m.warm_starts.inc();
            } else {
                m.cold_starts.inc();
            }
        }
        cache.set_internal(u);
        // A solve that iterated re-evaluated its residual from scratch,
        // so the adjustment chain restarts.
        if iterations > 0 {
            adjustments = 0;
        }
        cache.set_warm(WarmState {
            x: x.clone(),
            context: Some(WarmContext {
                v: v.to_vec(),
                residual: residual.clone(),
                gd: gd.clone(),
                adjustments,
            }),
        });
        Ok(SolveReport {
            currents,
            node_voltages: x,
            newton_iterations: iterations,
            residual_norm: res_norm,
            dampings: dampings_total,
            warm_start: warm_started,
            cg: None,
        })
    }

    /// Correctness net for the amortized path: exact damped Newton
    /// seeded from the best iterate the chord reached. `x` only ever
    /// improves the residual (damped acceptance), so the seed is never
    /// worse than the amortized solve's own starting point.
    fn amortized_fallback(
        &self,
        v: &[f64],
        x: &[f64],
        cache: &mut SolverCache,
    ) -> Result<SolveReport, XbarError> {
        if telemetry::enabled() {
            metrics().amortized_fallbacks.inc();
        }
        let report = self.solve_with_guess(v, Some(x))?;
        // The exact path reports voltages only, so the next warm solve
        // re-evaluates its initial residual (context: None).
        cache.set_warm(WarmState {
            x: report.node_voltages.clone(),
            context: None,
        });
        Ok(report)
    }

    /// Solves a panel of input samples through one cached
    /// factorization, chaining warm starts sample to sample.
    ///
    /// `volts` is row-major `samples × rows`: sample `s` occupies
    /// `volts[s * rows .. (s + 1) * rows]` — the layout funcsim's
    /// batched GEMV path already carries, so a stream batch drives the
    /// solver without reshaping. Each sample runs
    /// [`solve_amortized`](Self::solve_amortized); the first inherits
    /// `cache`'s warm start (cold on a fresh cache), each subsequent
    /// one starts from its predecessor's converged node voltages.
    ///
    /// # Errors
    ///
    /// [`XbarError::Shape`] if `volts.len() != samples * rows`;
    /// otherwise as [`solve`](Self::solve), failing on the first
    /// diverging sample.
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> Result<(), xbar::XbarError> {
    /// use xbar::{ConductanceMatrix, CrossbarCircuit, CrossbarParams, SolverCache};
    ///
    /// let params = CrossbarParams::builder(4, 4).build()?;
    /// let g = ConductanceMatrix::uniform(4, 4, params.g_on());
    /// let circuit = CrossbarCircuit::new(&params, &g)?;
    /// let mut cache = SolverCache::for_circuit(&circuit);
    ///
    /// // Three 4-input samples, row-major.
    /// let volts = vec![
    ///     0.25, 0.0, 0.25, 0.0, //
    ///     0.0, 0.25, 0.0, 0.25, //
    ///     0.25, 0.25, 0.25, 0.25,
    /// ];
    /// let reports = circuit.solve_batch(&volts, 3, &mut cache)?;
    /// assert_eq!(reports.len(), 3);
    /// assert!(!reports[0].warm_start && reports[1].warm_start);
    /// # Ok(())
    /// # }
    /// ```
    pub fn solve_batch(
        &self,
        volts: &[f64],
        samples: usize,
        cache: &mut SolverCache,
    ) -> Result<Vec<SolveReport>, XbarError> {
        let rows = self.rows();
        if volts.len() != samples * rows {
            return Err(XbarError::Shape(format!(
                "{} panel voltages for {samples} samples of {rows} word lines",
                volts.len()
            )));
        }
        let _trace = telemetry::trace_active().then(|| {
            telemetry::trace_scope(
                "xbar.solve_batch",
                vec![
                    ("tile".to_string(), telemetry::Json::from(self.tile_id)),
                    ("samples".to_string(), telemetry::Json::from(samples)),
                ],
            )
        });
        let mut reports = Vec::with_capacity(samples);
        for sample in volts.chunks_exact(rows) {
            reports.push(self.solve_amortized(sample, cache)?);
        }
        Ok(reports)
    }
}

/// Solves a symmetric tridiagonal system with constant off-diagonal
/// `off` and diagonal given by `diag(k)`, via the Thomas algorithm.
///
/// `scratch` holds the forward-eliminated super-diagonal. All slices
/// must have length `n`. For `n == 1` the system is scalar.
fn thomas_solve<F: Fn(usize) -> f64>(
    n: usize,
    diag: F,
    off: f64,
    rhs: &[f64],
    sol: &mut [f64],
    scratch: &mut [f64],
) {
    debug_assert!(n >= 1);
    // Forward sweep.
    let mut denom = diag(0);
    scratch[0] = off / denom;
    sol[0] = rhs[0] / denom;
    for k in 1..n {
        denom = diag(k) - off * scratch[k - 1];
        scratch[k] = off / denom;
        sol[k] = (rhs[k] - off * sol[k - 1]) / denom;
    }
    // Back substitution.
    for k in (0..n.saturating_sub(1)).rev() {
        sol[k] -= scratch[k] * sol[k + 1];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::NonIdealityConfig;
    use crate::{ideal_mvm, CrossbarParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(rows: usize, cols: usize) -> CrossbarParams {
        CrossbarParams::builder(rows, cols).build().unwrap()
    }

    #[test]
    fn thomas_solves_small_system() {
        // [[2, -1, 0], [-1, 2, -1], [0, -1, 2]] x = [1, 0, 1]
        let mut sol = vec![0.0; 3];
        let mut scratch = vec![0.0; 3];
        thomas_solve(3, |_| 2.0, -1.0, &[1.0, 0.0, 1.0], &mut sol, &mut scratch);
        // exact solution: x = [1.5, 2, 1.5]? check: 2*1.5 - 2 = 1 ok;
        // -1.5 + 4 - 1.5 = 1 != 0 -> recompute: solve manually below.
        // A x = b with A tridiag(2,-1): x = A^{-1} b.
        // Verify by multiplying back instead of hardcoding.
        let ax0 = 2.0 * sol[0] - sol[1];
        let ax1 = -sol[0] + 2.0 * sol[1] - sol[2];
        let ax2 = -sol[1] + 2.0 * sol[2];
        assert!((ax0 - 1.0).abs() < 1e-12);
        assert!(ax1.abs() < 1e-12);
        assert!((ax2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn thomas_scalar_case() {
        let mut sol = vec![0.0];
        let mut scratch = vec![0.0];
        thomas_solve(1, |_| 4.0, -1.0, &[2.0], &mut sol, &mut scratch);
        assert!((sol[0] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn no_parasitics_linear_matches_ideal() {
        let mut p = params(4, 4);
        p.nonideality = NonIdealityConfig::none();
        let g = ConductanceMatrix::uniform(4, 4, p.g_on());
        let circuit = CrossbarCircuit::new(&p, &g).unwrap();
        let v = vec![0.25; 4];
        let report = circuit.solve(&v).unwrap();
        let ideal = ideal_mvm(&v, &g).unwrap();
        for (a, b) in report.currents.iter().zip(&ideal) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn tiny_parasitics_approach_ideal() {
        // With microscopic parasitics the full solve must converge to
        // the ideal MVM.
        let mut p = CrossbarParams::builder(3, 3)
            .r_source(1e-3)
            .r_sink(1e-3)
            .r_wire(1e-3)
            .build()
            .unwrap();
        p.nonideality = NonIdealityConfig::linear_only();
        let g = ConductanceMatrix::uniform(3, 3, p.g_on());
        let circuit = CrossbarCircuit::new(&p, &g).unwrap();
        let v = vec![0.25, 0.1, 0.2];
        let report = circuit.solve(&v).unwrap();
        let ideal = ideal_mvm(&v, &g).unwrap();
        for (a, b) in report.currents.iter().zip(&ideal) {
            assert!((a - b).abs() < 1e-5 * b.abs().max(1e-12), "{a} vs {b}");
        }
    }

    #[test]
    fn parasitics_reduce_current_linear_case() {
        let mut p = params(8, 8);
        p.nonideality = NonIdealityConfig::linear_only();
        let g = ConductanceMatrix::uniform(8, 8, p.g_on());
        let circuit = CrossbarCircuit::new(&p, &g).unwrap();
        let v = vec![p.v_supply; 8];
        let report = circuit.solve(&v).unwrap();
        let ideal = ideal_mvm(&v, &g).unwrap();
        for (ni, id) in report.currents.iter().zip(&ideal) {
            assert!(ni < id, "non-ideal {ni} should be below ideal {id}");
            assert!(*ni > 0.0);
        }
    }

    #[test]
    fn kcl_holds_at_solution() {
        let p = params(6, 5);
        let mut rng = StdRng::seed_from_u64(3);
        let g = ConductanceMatrix::random_sparse(&p, 0.4, &mut rng);
        let circuit = CrossbarCircuit::new(&p, &g).unwrap();
        let v = vec![0.25, 0.0, 0.125, 0.25, 0.0625, 0.1875];
        let report = circuit.solve(&v).unwrap();
        let mut res = vec![0.0; p.node_count()];
        circuit.kcl_residual(&v, &report.node_voltages, &mut res);
        assert!(linalg::vec_ops::norm_inf(&res) <= 1e-13);
    }

    #[test]
    fn verify_kcl_matches_report_and_tolerance() {
        let p = params(6, 5);
        let mut rng = StdRng::seed_from_u64(5);
        let g = ConductanceMatrix::random_sparse(&p, 0.4, &mut rng);
        let circuit = CrossbarCircuit::new(&p, &g).unwrap();
        let v = vec![0.25, 0.125, 0.0, 0.1875, 0.0625, 0.25];
        let report = circuit.solve(&v).unwrap();
        let res = circuit.verify_kcl(&v, &report.node_voltages).unwrap();
        let tol = circuit.effective_tolerance(&v);
        assert!(res <= tol, "residual {res} above tolerance {tol}");
        // Perturbing a node voltage must break KCL.
        let mut bad = report.node_voltages.clone();
        bad[0] += 1e-3;
        assert!(circuit.verify_kcl(&v, &bad).unwrap() > tol);
        // Shape validation.
        assert!(circuit.verify_kcl(&v[..3], &report.node_voltages).is_err());
        assert!(circuit.verify_kcl(&v, &bad[..5]).is_err());
    }

    #[test]
    fn current_conservation_sources_equal_sinks() {
        // Total current injected by the sources equals total sensed at
        // the sinks (no other path to ground exists).
        let p = params(5, 7);
        let mut rng = StdRng::seed_from_u64(11);
        let g = ConductanceMatrix::random_sparse(&p, 0.3, &mut rng);
        let circuit = CrossbarCircuit::new(&p, &g).unwrap();
        let v: Vec<f64> = (0..5).map(|i| 0.05 * i as f64).collect();
        let report = circuit.solve(&v).unwrap();
        let g_src = 1.0 / p.r_source;
        let injected: f64 = (0..5)
            .map(|i| g_src * (v[i] - report.node_voltages[circuit.w_idx(i, 0)]))
            .sum();
        let sensed: f64 = report.currents.iter().sum();
        assert!(
            (injected - sensed).abs() < 1e-12 * injected.abs().max(1e-12),
            "injected {injected} vs sensed {sensed}"
        );
    }

    #[test]
    fn gauss_seidel_matches_cg() {
        let p = params(6, 6);
        let mut rng = StdRng::seed_from_u64(8);
        let g = ConductanceMatrix::random_sparse(&p, 0.5, &mut rng);
        let v: Vec<f64> = vec![0.25, 0.125, 0.0, 0.25, 0.0625, 0.1875];

        let bgs = CrossbarCircuit::new(&p, &g).unwrap().solve(&v).unwrap();
        let cg = CrossbarCircuit::with_options(
            &p,
            &g,
            NewtonOptions {
                linear_solver: LinearSolverKind::ConjugateGradient,
                ..NewtonOptions::default()
            },
        )
        .unwrap()
        .solve(&v)
        .unwrap();
        for (a, b) in bgs.currents.iter().zip(&cg.currents) {
            assert!((a - b).abs() < 1e-10 * a.abs().max(1e-12), "{a} vs {b}");
        }
    }

    #[test]
    fn cg_statistics_surface_in_report() {
        let p = params(6, 6);
        let mut rng = StdRng::seed_from_u64(8);
        let g = ConductanceMatrix::random_sparse(&p, 0.5, &mut rng);
        let v = vec![0.25, 0.125, 0.0, 0.25, 0.0625, 0.1875];

        let bgs = CrossbarCircuit::new(&p, &g).unwrap().solve(&v).unwrap();
        assert!(bgs.cg.is_none(), "BGS path must not report CG stats");
        assert!(!bgs.warm_start);

        let circuit = CrossbarCircuit::with_options(
            &p,
            &g,
            NewtonOptions {
                linear_solver: LinearSolverKind::ConjugateGradient,
                ..NewtonOptions::default()
            },
        )
        .unwrap();
        let cg = circuit.solve(&v).unwrap();
        let stats = cg.cg.expect("CG path reports inner stats");
        assert_eq!(stats.solves, cg.newton_iterations);
        assert!(stats.total_iterations >= stats.solves);
        assert!(stats.last_iterations > 0);
        assert!(stats.last_residual.is_finite());

        // Warm start from the converged point: flagged, and no harder
        // than the cold solve.
        let warm = circuit
            .solve_with_guess(&v, Some(&cg.node_voltages))
            .unwrap();
        assert!(warm.warm_start);
        assert!(warm.newton_iterations <= cg.newton_iterations);
    }

    #[test]
    fn jacobian_is_symmetric_spd_structure() {
        let p = params(4, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let g = ConductanceMatrix::random_sparse(&p, 0.2, &mut rng);
        let circuit = CrossbarCircuit::new(&p, &g).unwrap();
        let x = vec![0.1; p.node_count()];
        let jac = circuit.assemble_jacobian(&x).unwrap();
        assert!(jac.is_symmetric(1e-15));
        // Diagonal dominance implies PSD here.
        for r in 0..jac.rows() {
            let diag = jac.get(r, r);
            assert!(diag > 0.0);
        }
    }

    #[test]
    fn sinh_nonlinearity_boosts_current_at_high_voltage() {
        // At Vsupply = 0.5 V = 2*V0 the sinh devices carry more current
        // than linear ones; with mild parasitics the nonlinear crossbar
        // output must exceed the linear-model output (the mechanism
        // behind Fig. 7d of the paper).
        let base = CrossbarParams::builder(8, 8).v_supply(0.5);
        let mut p_nl = base.clone().build().unwrap();
        p_nl.nonideality = NonIdealityConfig {
            parasitics: true,
            device_nonlinearity: true,
            access_device: false,
        };
        let mut p_lin = base.build().unwrap();
        p_lin.nonideality = NonIdealityConfig::linear_only();

        let g = ConductanceMatrix::uniform(8, 8, p_nl.g_on());
        let v = vec![0.5; 8];
        let i_nl = CrossbarCircuit::new(&p_nl, &g).unwrap().solve(&v).unwrap();
        let i_lin = CrossbarCircuit::new(&p_lin, &g).unwrap().solve(&v).unwrap();
        for (nl, lin) in i_nl.currents.iter().zip(&i_lin.currents) {
            assert!(nl > lin, "nonlinear {nl} should exceed linear {lin}");
        }
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let p = params(4, 4);
        let g = ConductanceMatrix::uniform(4, 4, p.g_on());
        let circuit = CrossbarCircuit::new(&p, &g).unwrap();
        let report = circuit.solve(&[0.0; 4]).unwrap();
        for i in report.currents {
            assert!(i.abs() < 1e-15);
        }
    }

    #[test]
    fn shape_and_input_validation() {
        let p = params(4, 4);
        let g = ConductanceMatrix::uniform(4, 4, 1e-5);
        let circuit = CrossbarCircuit::new(&p, &g).unwrap();
        assert!(circuit.solve(&[0.1; 3]).is_err());
        assert!(circuit.solve(&[f64::NAN, 0.0, 0.0, 0.0]).is_err());

        let g_bad = ConductanceMatrix::uniform(3, 4, 1e-5);
        assert!(CrossbarCircuit::new(&p, &g_bad).is_err());
    }

    #[test]
    fn rectangular_crossbars_solve() {
        for (r, c) in [(1, 1), (1, 8), (8, 1), (3, 9), (9, 3)] {
            let p = params(r, c);
            let g = ConductanceMatrix::uniform(r, c, p.g_on());
            let circuit = CrossbarCircuit::new(&p, &g).unwrap();
            let v = vec![0.2; r];
            let report = circuit.solve(&v).unwrap();
            assert_eq!(report.currents.len(), c);
            assert!(report.currents.iter().all(|&i| i > 0.0 && i.is_finite()));
        }
    }

    #[test]
    fn amortized_matches_cold_solve() {
        let p = params(6, 5);
        let mut rng = StdRng::seed_from_u64(21);
        let g = ConductanceMatrix::random_sparse(&p, 0.5, &mut rng);
        let circuit = CrossbarCircuit::new(&p, &g).unwrap();
        let mut cache = crate::SolverCache::for_circuit(&circuit);
        let inputs = [
            vec![0.25, 0.0, 0.125, 0.25, 0.0625, 0.1875],
            vec![0.0, 0.25, 0.25, 0.0, 0.125, 0.0625],
            vec![0.25; 6],
        ];
        for v in &inputs {
            let cold = circuit.solve(v).unwrap();
            let amortized = circuit.solve_amortized(v, &mut cache).unwrap();
            // Both converged the same KCL system to the same tolerance.
            for (a, b) in amortized.currents.iter().zip(&cold.currents) {
                assert!(
                    (a - b).abs() <= 1e-6 * b.abs() + 1e-10,
                    "amortized {a} vs cold {b}"
                );
            }
            let res = circuit.verify_kcl(v, &amortized.node_voltages).unwrap();
            assert!(res <= circuit.effective_tolerance(v));
        }
    }

    #[test]
    fn amortized_warm_start_is_fixed_point() {
        let p = params(5, 5);
        let mut rng = StdRng::seed_from_u64(13);
        let g = ConductanceMatrix::random_sparse(&p, 0.6, &mut rng);
        let circuit = CrossbarCircuit::new(&p, &g).unwrap();
        let mut cache = crate::SolverCache::for_circuit(&circuit);
        let v = vec![0.25, 0.125, 0.0625, 0.1875, 0.25];
        let first = circuit.solve_amortized(&v, &mut cache).unwrap();
        assert!(!first.warm_start);
        // Re-solving the same input from the converged warm start is a
        // fixed point: zero iterations, bit-identical output.
        let second = circuit.solve_amortized(&v, &mut cache).unwrap();
        assert!(second.warm_start);
        assert_eq!(second.newton_iterations, 0);
        assert_eq!(second.currents, first.currents);
        assert_eq!(second.node_voltages, first.node_voltages);
    }

    #[test]
    fn solve_batch_matches_per_sample_solves() {
        let p = params(4, 6);
        let mut rng = StdRng::seed_from_u64(17);
        let g = ConductanceMatrix::random_sparse(&p, 0.5, &mut rng);
        let circuit = CrossbarCircuit::new(&p, &g).unwrap();
        let mut cache = crate::SolverCache::for_circuit(&circuit);
        let volts = vec![
            0.25, 0.0, 0.125, 0.0625, //
            0.0, 0.25, 0.0, 0.1875, //
            0.125, 0.125, 0.25, 0.0,
        ];
        let reports = circuit.solve_batch(&volts, 3, &mut cache).unwrap();
        assert_eq!(reports.len(), 3);
        assert!(!reports[0].warm_start);
        assert!(reports[1].warm_start && reports[2].warm_start);
        for (s, report) in reports.iter().enumerate() {
            let cold = circuit.solve(&volts[s * 4..(s + 1) * 4]).unwrap();
            for (a, b) in report.currents.iter().zip(&cold.currents) {
                assert!((a - b).abs() <= 1e-6 * b.abs() + 1e-10);
            }
        }
        // Shape validation.
        assert!(circuit.solve_batch(&volts[..10], 3, &mut cache).is_err());
    }

    #[test]
    fn amortized_handles_no_parasitics() {
        let mut p = params(4, 4);
        p.nonideality = NonIdealityConfig::none();
        let g = ConductanceMatrix::uniform(4, 4, p.g_on());
        let circuit = CrossbarCircuit::new(&p, &g).unwrap();
        let mut cache = crate::SolverCache::for_circuit(&circuit);
        let v = vec![0.25; 4];
        let amortized = circuit.solve_amortized(&v, &mut cache).unwrap();
        let cold = circuit.solve(&v).unwrap();
        assert_eq!(amortized.currents, cold.currents);
    }

    #[test]
    fn frozen_factorization_matches_fresh_bgs_direction() {
        // At the zero-bias linearization point the frozen operator and
        // the freshly-built one must produce (numerically) the same
        // correction.
        let p = params(5, 4);
        let mut rng = StdRng::seed_from_u64(29);
        let g = ConductanceMatrix::random_sparse(&p, 0.5, &mut rng);
        let circuit = CrossbarCircuit::new(&p, &g).unwrap();
        let fact = circuit.factorize();
        let x0 = vec![0.0; p.node_count()];
        let f: Vec<f64> = (0..p.node_count())
            .map(|k| 1e-6 * ((k % 7) as f64 - 3.0))
            .collect();
        let fresh = circuit.block_gauss_seidel(&x0, &f).unwrap();
        let frozen = circuit.block_gauss_seidel_frozen(&fact, &f).unwrap();
        // Both stop by the same inexact-Newton rule (1e-8 of the first
        // sweep's step), so the directions agree to that accuracy.
        let scale = fresh.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        for (a, b) in frozen.iter().zip(&fresh) {
            assert!((a - b).abs() <= 1e-7 * scale, "{a} vs {b}");
        }
    }

    #[test]
    fn bigger_crossbar_has_larger_relative_drop() {
        // The Fig. 2(b) trend: larger crossbars lose relatively more
        // current to parasitics.
        let mut rel_errors = Vec::new();
        for n in [4usize, 16, 32] {
            let mut p = params(n, n);
            p.nonideality = NonIdealityConfig::linear_only();
            let g = ConductanceMatrix::uniform(n, n, p.g_on());
            let circuit = CrossbarCircuit::new(&p, &g).unwrap();
            let v = vec![p.v_supply; n];
            let report = circuit.solve(&v).unwrap();
            let ideal = ideal_mvm(&v, &g).unwrap();
            let rel = (ideal[n - 1] - report.currents[n - 1]) / ideal[n - 1];
            rel_errors.push(rel);
        }
        assert!(rel_errors[0] < rel_errors[1]);
        assert!(rel_errors[1] < rel_errors[2]);
    }
}

//! Crossbar design parameters and non-ideality configuration.

use crate::XbarError;

/// Compact-model parameters of the filamentary RRAM device and its
/// access device.
///
/// Defaults follow Section 6 of the paper: `d0 = 0.25 nm`,
/// `V0 = 0.25 V`, `I0 = 0.1 mA`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceParams {
    /// Gap-scale of the exponential term (nanometres).
    pub d0: f64,
    /// Voltage scale of the sinh term (volts).
    pub v0: f64,
    /// Current prefactor (amperes).
    pub i0: f64,
    /// Access-device on-conductance (siemens).
    pub access_g: f64,
    /// Access-device saturation voltage (volts).
    pub access_v_sat: f64,
}

impl DeviceParams {
    /// Paper defaults: `d0 = 0.25 nm`, `V0 = 0.25 V`, `I0 = 0.1 mA`,
    /// access device `G = 50 µS`, `V_sat = 0.6 V` (TSMC 65 nm-class
    /// on-resistance of ≈ 20 kΩ).
    pub fn new() -> Self {
        DeviceParams {
            d0: 0.25,
            v0: 0.25,
            i0: 1e-4,
            access_g: 5e-5,
            access_v_sat: 0.6,
        }
    }
}

impl Default for DeviceParams {
    fn default() -> Self {
        DeviceParams::new()
    }
}

/// Which categories of non-ideality the circuit includes (Table 2 of
/// the paper).
///
/// The default enables everything; the analytical baseline corresponds
/// to `linear_only()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonIdealityConfig {
    /// Parasitic source/sink/wire resistances (linear non-idealities).
    pub parasitics: bool,
    /// Device sinh non-linearity (non-linear non-ideality).
    pub device_nonlinearity: bool,
    /// Access-device (selector/transistor) non-linearity.
    pub access_device: bool,
}

impl NonIdealityConfig {
    /// Everything enabled — the full non-ideal crossbar.
    pub fn all() -> Self {
        NonIdealityConfig {
            parasitics: true,
            device_nonlinearity: true,
            access_device: true,
        }
    }

    /// Only linear non-idealities (what analytical models capture).
    pub fn linear_only() -> Self {
        NonIdealityConfig {
            parasitics: true,
            device_nonlinearity: false,
            access_device: false,
        }
    }

    /// No non-idealities at all — the circuit degenerates to the ideal
    /// MVM (used as a solver sanity check).
    pub fn none() -> Self {
        NonIdealityConfig {
            parasitics: false,
            device_nonlinearity: false,
            access_device: false,
        }
    }
}

impl Default for NonIdealityConfig {
    fn default() -> Self {
        NonIdealityConfig::all()
    }
}

/// Full design-point description of a crossbar.
///
/// Construct through [`CrossbarParams::builder`]; defaults follow the
/// paper's experimental methodology (Section 6): 64×64, Ron = 100 kΩ,
/// ON/OFF = 6, Rsource = 500 Ω, Rsink = 100 Ω, Rwire = 2.5 Ω/cell,
/// Vsupply = 0.25 V.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), xbar::XbarError> {
/// use xbar::CrossbarParams;
/// let p = CrossbarParams::builder(64, 64)
///     .r_on(100e3)
///     .on_off_ratio(6.0)
///     .v_supply(0.25)
///     .build()?;
/// assert!((p.g_on() - 1e-5).abs() < 1e-18);
/// assert!((p.g_off() - 1e-5 / 6.0).abs() < 1e-18);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CrossbarParams {
    /// Number of word lines (rows / input dimension).
    pub rows: usize,
    /// Number of bit lines (columns / output dimension).
    pub cols: usize,
    /// ON-state resistance (ohms).
    pub r_on: f64,
    /// Conductance ON/OFF ratio (dimensionless, > 1).
    pub on_off_ratio: f64,
    /// Word-line driver source resistance (ohms).
    pub r_source: f64,
    /// Bit-line sense sink resistance (ohms).
    pub r_sink: f64,
    /// Wire resistance per cell segment (ohms).
    pub r_wire: f64,
    /// Supply voltage: the full-scale input level (volts).
    pub v_supply: f64,
    /// Device compact-model parameters.
    pub device: DeviceParams,
    /// Which non-idealities are active.
    pub nonideality: NonIdealityConfig,
}

impl CrossbarParams {
    /// Starts a builder for a `rows x cols` crossbar with paper-default
    /// parameters.
    pub fn builder(rows: usize, cols: usize) -> CrossbarParamsBuilder {
        CrossbarParamsBuilder {
            rows,
            cols,
            r_on: 100e3,
            on_off_ratio: 6.0,
            r_source: 500.0,
            r_sink: 100.0,
            r_wire: 2.5,
            v_supply: 0.25,
            device: DeviceParams::default(),
            nonideality: NonIdealityConfig::all(),
        }
    }

    /// ON-state conductance `1 / r_on` (siemens).
    pub fn g_on(&self) -> f64 {
        1.0 / self.r_on
    }

    /// OFF-state conductance `g_on / on_off_ratio` (siemens).
    pub fn g_off(&self) -> f64 {
        self.g_on() / self.on_off_ratio
    }

    /// Total node count of the assembled circuit (two per cell).
    pub fn node_count(&self) -> usize {
        2 * self.rows * self.cols
    }
}

/// Builder for [`CrossbarParams`] (see there for defaults).
#[derive(Debug, Clone)]
pub struct CrossbarParamsBuilder {
    rows: usize,
    cols: usize,
    r_on: f64,
    on_off_ratio: f64,
    r_source: f64,
    r_sink: f64,
    r_wire: f64,
    v_supply: f64,
    device: DeviceParams,
    nonideality: NonIdealityConfig,
}

impl CrossbarParamsBuilder {
    /// Sets the ON-state resistance in ohms (paper sweeps 50k/100k/300k).
    pub fn r_on(mut self, r_on: f64) -> Self {
        self.r_on = r_on;
        self
    }

    /// Sets the conductance ON/OFF ratio (paper sweeps 2/6/10).
    pub fn on_off_ratio(mut self, ratio: f64) -> Self {
        self.on_off_ratio = ratio;
        self
    }

    /// Sets the source resistance in ohms (paper uses 500/1000).
    pub fn r_source(mut self, r: f64) -> Self {
        self.r_source = r;
        self
    }

    /// Sets the sink resistance in ohms (paper uses 100/500).
    pub fn r_sink(mut self, r: f64) -> Self {
        self.r_sink = r;
        self
    }

    /// Sets the per-cell wire resistance in ohms (paper uses 2.5).
    pub fn r_wire(mut self, r: f64) -> Self {
        self.r_wire = r;
        self
    }

    /// Sets the supply (full-scale input) voltage (paper uses 0.25/0.5).
    pub fn v_supply(mut self, v: f64) -> Self {
        self.v_supply = v;
        self
    }

    /// Overrides the device compact-model parameters.
    pub fn device(mut self, device: DeviceParams) -> Self {
        self.device = device;
        self
    }

    /// Selects which non-idealities are active.
    pub fn nonideality(mut self, config: NonIdealityConfig) -> Self {
        self.nonideality = config;
        self
    }

    /// Validates and builds the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidParameter`] if any dimension is zero,
    /// any resistance is non-positive or non-finite, the ON/OFF ratio is
    /// ≤ 1, or the supply voltage is non-positive.
    pub fn build(self) -> Result<CrossbarParams, XbarError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(XbarError::InvalidParameter(format!(
                "crossbar must be non-empty, got {}x{}",
                self.rows, self.cols
            )));
        }
        for (name, v) in [
            ("r_on", self.r_on),
            ("r_source", self.r_source),
            ("r_sink", self.r_sink),
            ("r_wire", self.r_wire),
            ("v_supply", self.v_supply),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(XbarError::InvalidParameter(format!(
                    "{name} must be positive and finite, got {v}"
                )));
            }
        }
        if !self.on_off_ratio.is_finite() || self.on_off_ratio <= 1.0 {
            return Err(XbarError::InvalidParameter(format!(
                "on_off_ratio must be > 1, got {}",
                self.on_off_ratio
            )));
        }
        if self.device.v0 <= 0.0 || self.device.d0 <= 0.0 || self.device.i0 <= 0.0 {
            return Err(XbarError::InvalidParameter(
                "device parameters d0, v0, i0 must be positive".into(),
            ));
        }
        if self.device.access_g <= 0.0 || self.device.access_v_sat <= 0.0 {
            return Err(XbarError::InvalidParameter(
                "access device parameters must be positive".into(),
            ));
        }
        Ok(CrossbarParams {
            rows: self.rows,
            cols: self.cols,
            r_on: self.r_on,
            on_off_ratio: self.on_off_ratio,
            r_source: self.r_source,
            r_sink: self.r_sink,
            r_wire: self.r_wire,
            v_supply: self.v_supply,
            device: self.device,
            nonideality: self.nonideality,
        })
    }
}

impl store::Canonical for DeviceParams {
    fn canonicalize(&self, key: &mut store::KeyBuilder) {
        key.f64("d0", self.d0)
            .f64("v0", self.v0)
            .f64("i0", self.i0)
            .f64("access_g", self.access_g)
            .f64("access_v_sat", self.access_v_sat);
    }
}

impl store::Canonical for NonIdealityConfig {
    fn canonicalize(&self, key: &mut store::KeyBuilder) {
        key.bool("parasitics", self.parasitics)
            .bool("device_nonlinearity", self.device_nonlinearity)
            .bool("access_device", self.access_device);
    }
}

impl store::Canonical for CrossbarParams {
    fn canonicalize(&self, key: &mut store::KeyBuilder) {
        key.usize("rows", self.rows)
            .usize("cols", self.cols)
            .f64("r_on", self.r_on)
            .f64("on_off_ratio", self.on_off_ratio)
            .f64("r_source", self.r_source)
            .f64("r_sink", self.r_sink)
            .f64("r_wire", self.r_wire)
            .f64("v_supply", self.v_supply)
            .nested("device", &self.device)
            .nested("nonideality", &self.nonideality);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = CrossbarParams::builder(64, 64).build().unwrap();
        assert_eq!(p.rows, 64);
        assert_eq!(p.r_on, 100e3);
        assert_eq!(p.on_off_ratio, 6.0);
        assert_eq!(p.r_source, 500.0);
        assert_eq!(p.r_sink, 100.0);
        assert_eq!(p.r_wire, 2.5);
        assert_eq!(p.v_supply, 0.25);
        assert_eq!(p.device.d0, 0.25);
        assert_eq!(p.device.v0, 0.25);
        assert_eq!(p.device.i0, 1e-4);
        assert_eq!(p.node_count(), 2 * 64 * 64);
    }

    #[test]
    fn conductances_derived() {
        let p = CrossbarParams::builder(4, 4)
            .r_on(50e3)
            .on_off_ratio(10.0)
            .build()
            .unwrap();
        assert!((p.g_on() - 2e-5).abs() < 1e-18);
        assert!((p.g_off() - 2e-6).abs() < 1e-18);
    }

    #[test]
    fn rejects_empty_crossbar() {
        assert!(CrossbarParams::builder(0, 4).build().is_err());
        assert!(CrossbarParams::builder(4, 0).build().is_err());
    }

    #[test]
    fn rejects_nonpositive_resistances() {
        assert!(CrossbarParams::builder(2, 2).r_on(0.0).build().is_err());
        assert!(CrossbarParams::builder(2, 2).r_wire(-1.0).build().is_err());
        assert!(CrossbarParams::builder(2, 2)
            .r_source(f64::NAN)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_bad_on_off_ratio() {
        assert!(CrossbarParams::builder(2, 2)
            .on_off_ratio(1.0)
            .build()
            .is_err());
        assert!(CrossbarParams::builder(2, 2)
            .on_off_ratio(0.5)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_bad_supply() {
        assert!(CrossbarParams::builder(2, 2).v_supply(0.0).build().is_err());
    }

    #[test]
    fn nonideality_presets() {
        assert!(NonIdealityConfig::all().device_nonlinearity);
        assert!(!NonIdealityConfig::linear_only().device_nonlinearity);
        assert!(NonIdealityConfig::linear_only().parasitics);
        assert!(!NonIdealityConfig::none().parasitics);
        assert_eq!(NonIdealityConfig::default(), NonIdealityConfig::all());
    }

    #[test]
    fn builder_is_chainable_and_rectangular() {
        let p = CrossbarParams::builder(16, 32)
            .r_on(300e3)
            .r_source(1000.0)
            .r_sink(500.0)
            .v_supply(0.5)
            .nonideality(NonIdealityConfig::linear_only())
            .build()
            .unwrap();
        assert_eq!((p.rows, p.cols), (16, 32));
        assert_eq!(p.r_source, 1000.0);
        assert_eq!(p.nonideality, NonIdealityConfig::linear_only());
    }

    #[test]
    fn canonical_key_tracks_every_field() {
        let base = CrossbarParams::builder(16, 16).build().unwrap();
        let key = |p: &CrossbarParams| store::key_of(*b"test", p);
        assert_eq!(key(&base), key(&base.clone()));

        let variants = [
            CrossbarParams::builder(32, 16).build().unwrap(),
            CrossbarParams::builder(16, 16).r_on(50e3).build().unwrap(),
            CrossbarParams::builder(16, 16)
                .on_off_ratio(10.0)
                .build()
                .unwrap(),
            CrossbarParams::builder(16, 16).r_wire(3.0).build().unwrap(),
            CrossbarParams::builder(16, 16)
                .v_supply(0.5)
                .build()
                .unwrap(),
            CrossbarParams::builder(16, 16)
                .device(DeviceParams {
                    d0: 0.3,
                    ..DeviceParams::default()
                })
                .build()
                .unwrap(),
            CrossbarParams::builder(16, 16)
                .nonideality(NonIdealityConfig::linear_only())
                .build()
                .unwrap(),
        ];
        for v in &variants {
            assert_ne!(key(&base), key(v), "field change missed: {v:?}");
        }
    }
}

//! The programmed conductance state of a crossbar.

use crate::{CrossbarParams, XbarError};
use rand::Rng;

/// A dense `rows x cols` matrix of programmed device conductances
/// (siemens), row-major.
///
/// This is the `G` of the paper's `f_R(V, G)`: the state the NVM devices
/// were programmed to, before any non-ideality acts on it.
///
/// # Example
///
/// ```
/// use xbar::ConductanceMatrix;
/// let mut g = ConductanceMatrix::uniform(2, 2, 1e-5);
/// g.set(0, 1, 2e-5);
/// assert_eq!(g.get(0, 1), 2e-5);
/// assert_eq!(g.get(1, 1), 1e-5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConductanceMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl ConductanceMatrix {
    /// Creates a matrix with every device programmed to `g` siemens.
    pub fn uniform(rows: usize, cols: usize, g: f64) -> Self {
        ConductanceMatrix {
            rows,
            cols,
            data: vec![g; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::Shape`] if `data.len() != rows * cols`, and
    /// [`XbarError::OutOfRange`] if any conductance is negative or
    /// non-finite.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, XbarError> {
        if data.len() != rows * cols {
            return Err(XbarError::Shape(format!(
                "conductance buffer of length {} for a {rows}x{cols} crossbar",
                data.len()
            )));
        }
        if let Some(bad) = data.iter().find(|&&g| !g.is_finite() || g < 0.0) {
            return Err(XbarError::OutOfRange(format!(
                "conductance {bad} is negative or non-finite"
            )));
        }
        Ok(ConductanceMatrix { rows, cols, data })
    }

    /// Creates a matrix of normalized levels in `[0, 1]` mapped into the
    /// `[g_off, g_on]` range of `params`.
    ///
    /// This is how the functional simulator maps weight slices onto
    /// devices: level 0 → `g_off`, level 1 → `g_on`.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::Shape`] on length mismatch and
    /// [`XbarError::OutOfRange`] if any level is outside `[0, 1]`.
    pub fn from_levels(params: &CrossbarParams, levels: &[f64]) -> Result<Self, XbarError> {
        if levels.len() != params.rows * params.cols {
            return Err(XbarError::Shape(format!(
                "{} levels for a {}x{} crossbar",
                levels.len(),
                params.rows,
                params.cols
            )));
        }
        let g_on = params.g_on();
        let g_off = params.g_off();
        let mut data = Vec::with_capacity(levels.len());
        for &l in levels {
            if !(0.0..=1.0).contains(&l) {
                return Err(XbarError::OutOfRange(format!("level {l} outside [0, 1]")));
            }
            data.push(g_off + l * (g_on - g_off));
        }
        Ok(ConductanceMatrix {
            rows: params.rows,
            cols: params.cols,
            data,
        })
    }

    /// Creates a random matrix where each device is `g_off` with
    /// probability `sparsity` and otherwise uniform in `[g_off, g_on]`.
    ///
    /// Bit-slicing produces highly sparse conductance patterns; the
    /// GENIEx training set stratifies over `sparsity` to cover them
    /// (Section 4, "Dataset").
    pub fn random_sparse<R: Rng>(params: &CrossbarParams, sparsity: f64, rng: &mut R) -> Self {
        let g_on = params.g_on();
        let g_off = params.g_off();
        let data = (0..params.rows * params.cols)
            .map(|_| {
                if rng.gen::<f64>() < sparsity {
                    g_off
                } else {
                    rng.gen_range(g_off..=g_on)
                }
            })
            .collect();
        ConductanceMatrix {
            rows: params.rows,
            cols: params.cols,
            data,
        }
    }

    /// Number of rows (word lines).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (bit lines).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Conductance at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the conductance at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds or `g` is negative or
    /// non-finite (programming a device to a non-physical state is an
    /// internal bug, not user input).
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, g: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        assert!(g.is_finite() && g >= 0.0, "non-physical conductance {g}");
        self.data[row * self.cols + col] = g;
    }

    /// Borrow of the flat row-major conductances.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Normalizes all conductances to `[0, 1]` levels relative to
    /// `[g_off, g_on]` — the representation the GENIEx surrogate
    /// consumes.
    pub fn to_levels(&self, params: &CrossbarParams) -> Vec<f64> {
        let g_on = params.g_on();
        let g_off = params.g_off();
        let span = g_on - g_off;
        self.data
            .iter()
            .map(|&g| ((g - g_off) / span).clamp(0.0, 1.0))
            .collect()
    }

    /// Fraction of devices programmed at or below `g_off + eps`.
    pub fn sparsity(&self, params: &CrossbarParams) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let threshold = params.g_off() * (1.0 + 1e-9);
        let off_count = self.data.iter().filter(|&&g| g <= threshold).count();
        off_count as f64 / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> CrossbarParams {
        CrossbarParams::builder(8, 8).build().unwrap()
    }

    #[test]
    fn uniform_fill() {
        let g = ConductanceMatrix::uniform(3, 5, 1e-5);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.cols(), 5);
        assert!(g.as_slice().iter().all(|&x| x == 1e-5));
    }

    #[test]
    fn from_vec_validates() {
        assert!(ConductanceMatrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(ConductanceMatrix::from_vec(2, 2, vec![-1.0, 0.0, 0.0, 0.0]).is_err());
        assert!(ConductanceMatrix::from_vec(2, 2, vec![f64::NAN; 4]).is_err());
        assert!(ConductanceMatrix::from_vec(2, 2, vec![1e-5; 4]).is_ok());
    }

    #[test]
    fn levels_round_trip() {
        let p = params();
        let levels: Vec<f64> = (0..64).map(|i| (i % 5) as f64 / 4.0).collect();
        let g = ConductanceMatrix::from_levels(&p, &levels).unwrap();
        let back = g.to_levels(&p);
        for (a, b) in levels.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn levels_validated() {
        let p = params();
        let mut levels = vec![0.5; 64];
        levels[0] = 1.5;
        assert!(ConductanceMatrix::from_levels(&p, &levels).is_err());
        assert!(ConductanceMatrix::from_levels(&p, &[0.5; 3]).is_err());
    }

    #[test]
    fn level_zero_is_g_off_level_one_is_g_on() {
        let p = params();
        let g = ConductanceMatrix::from_levels(&p, &vec![0.0; 64]).unwrap();
        assert!((g.get(0, 0) - p.g_off()).abs() < 1e-18);
        let g = ConductanceMatrix::from_levels(&p, &vec![1.0; 64]).unwrap();
        assert!((g.get(0, 0) - p.g_on()).abs() < 1e-18);
    }

    #[test]
    fn random_sparse_respects_range_and_sparsity() {
        let p = params();
        let mut rng = StdRng::seed_from_u64(42);
        let g = ConductanceMatrix::random_sparse(&p, 0.8, &mut rng);
        for &x in g.as_slice() {
            assert!(x >= p.g_off() && x <= p.g_on());
        }
        let s = g.sparsity(&p);
        assert!(s > 0.6 && s < 0.95, "sparsity was {s}");
    }

    #[test]
    fn sparsity_of_dense_matrix_is_zero() {
        let p = params();
        let g = ConductanceMatrix::uniform(8, 8, p.g_on());
        assert_eq!(g.sparsity(&p), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-physical")]
    fn set_rejects_negative() {
        let mut g = ConductanceMatrix::uniform(2, 2, 1e-5);
        g.set(0, 0, -1.0);
    }
}

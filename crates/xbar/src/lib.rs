//! Non-ideal memristive crossbar circuit simulation.
//!
//! This crate plays the role HSPICE plays in the GENIEx paper (DAC 2020):
//! it produces the ground-truth transfer characteristics
//! `(V, G) -> I_non_ideal` of a parasitic 1T1R crossbar, which the GENIEx
//! surrogate is trained against and which the analytical baseline is
//! compared to.
//!
//! # What is modelled
//!
//! * **Linear non-idealities** (Table 2 of the paper): source resistance
//!   at every word-line driver, sink resistance at every bit-line sense
//!   node, and wire resistance between adjacent cells on both lines.
//! * **Non-linear non-idealities**: the filamentary RRAM compact model
//!   `I(d, V) = I0 · exp(d/d0) · sinh(V/V0)` (Guan et al. 2012) and a
//!   saturating access-device model in series at every cross-point.
//!
//! # Architecture
//!
//! * [`device`] — device I-V models and conductance calibration.
//! * [`CrossbarParams`] / [`NonIdealityConfig`] — design parameters
//!   (size, Ron, ON/OFF ratio, parasitic resistances, supply voltage).
//! * [`CrossbarCircuit`] — the nonlinear DC solver (modified nodal
//!   analysis, damped Newton–Raphson, Jacobi-preconditioned CG).
//! * [`SolverCache`] / [`JacobianFactorization`] — amortized solving:
//!   content-keyed frozen-Jacobian factorizations and warm-started
//!   Newton for batches of inputs against one programmed tile
//!   (DESIGN.md §15).
//! * [`AnalyticalModel`] — the linear baseline (parasitics only; devices
//!   replaced by their programmed conductance), including the CxDNN-style
//!   effective-matrix extraction.
//! * [`ideal_mvm`] — the ideal `I_j = Σ_i V_i · G_ij` arithmetic.
//! * [`zoo`] — the pluggable non-ideality zoo: seeded, composable
//!   imperfection models (variation, stuck-at faults, drift, read
//!   noise) with declared lifecycle stages.
//! * [`nf`] — the non-ideality-factor metric and its summary statistics.
//! * [`sweep`] — design-space sweep drivers used by the figure
//!   regeneration binaries.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), xbar::XbarError> {
//! use xbar::{CrossbarParams, CrossbarCircuit, ConductanceMatrix, ideal_mvm};
//!
//! let params = CrossbarParams::builder(16, 16).build()?;
//! // All devices at G_on, all inputs at full supply.
//! let g = ConductanceMatrix::uniform(16, 16, params.g_on());
//! let v = vec![params.v_supply; 16];
//! let circuit = CrossbarCircuit::new(&params, &g)?;
//! let non_ideal = circuit.solve(&v)?;
//! let ideal = ideal_mvm(&v, &g)?;
//! // At this size the parasitic IR drop outweighs the device
//! // non-linearity's boost: every column loses current.
//! for (i, ni) in ideal.iter().zip(&non_ideal.currents) {
//!     assert!(ni < i);
//! }
//! # Ok(())
//! # }
//! ```

mod analytical;
mod cache;
mod circuit;
mod conductance;
pub mod device;
mod error;
pub mod netlist;
pub mod nf;
mod params;
pub mod sweep;
mod variation;
pub mod zoo;

pub use analytical::AnalyticalModel;
pub use cache::{JacobianFactorization, SolverCache};
pub use circuit::{CgStats, CrossbarCircuit, LinearSolverKind, NewtonOptions, SolveReport};
pub use conductance::ConductanceMatrix;
pub use error::XbarError;
pub use params::{CrossbarParams, CrossbarParamsBuilder, DeviceParams, NonIdealityConfig};
pub use variation::{apply_variations, VariationConfig};
pub use zoo::{NonIdeality, NonIdealityStack, Stage};

use linalg::LinalgError;

/// Computes the ideal MVM `I_j = Σ_i V_i · G_ij`.
///
/// This is the arithmetic a perfect crossbar would perform and the
/// numerator of the paper's non-ideality factor.
///
/// # Errors
///
/// Returns [`XbarError::Shape`] if `v.len() != g.rows()`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), xbar::XbarError> {
/// use xbar::{ConductanceMatrix, ideal_mvm};
/// let g = ConductanceMatrix::uniform(2, 3, 1e-5);
/// let i = ideal_mvm(&[0.25, 0.25], &g)?;
/// assert_eq!(i.len(), 3);
/// assert!((i[0] - 2.0 * 0.25 * 1e-5).abs() < 1e-18);
/// # Ok(())
/// # }
/// ```
pub fn ideal_mvm(v: &[f64], g: &ConductanceMatrix) -> Result<Vec<f64>, XbarError> {
    if v.len() != g.rows() {
        return Err(XbarError::Shape(format!(
            "ideal_mvm: {} inputs for a {}x{} crossbar",
            v.len(),
            g.rows(),
            g.cols()
        )));
    }
    let mut out = vec![0.0; g.cols()];
    for i in 0..g.rows() {
        let vi = v[i];
        if vi == 0.0 {
            continue;
        }
        for j in 0..g.cols() {
            out[j] += vi * g.get(i, j);
        }
    }
    Ok(out)
}

impl From<LinalgError> for XbarError {
    fn from(err: LinalgError) -> Self {
        XbarError::Numerical(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_mvm_rejects_bad_shape() {
        let g = ConductanceMatrix::uniform(2, 2, 1e-5);
        assert!(ideal_mvm(&[1.0], &g).is_err());
    }

    #[test]
    fn ideal_mvm_zero_inputs_give_zero() {
        let g = ConductanceMatrix::uniform(3, 3, 1e-5);
        let out = ideal_mvm(&[0.0; 3], &g).unwrap();
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn ideal_mvm_known_value() {
        let mut g = ConductanceMatrix::uniform(2, 2, 0.0);
        g.set(0, 0, 1e-5);
        g.set(1, 1, 2e-5);
        let out = ideal_mvm(&[0.5, 0.25], &g).unwrap();
        assert!((out[0] - 0.5e-5).abs() < 1e-18);
        assert!((out[1] - 0.5e-5).abs() < 1e-18);
    }
}

//! Design-space sweep drivers behind the Fig. 2 / Fig. 3 analyses.
//!
//! These generate random sparse (V, G) workloads — the same kind of
//! stimulus the paper applies in its SPICE analysis — drive the circuit
//! solver, and collect [`NfSummary`] statistics per design point.

use crate::circuit::CrossbarCircuit;
use crate::conductance::ConductanceMatrix;
use crate::nf::{non_ideality_factors, NfSummary};
use crate::params::CrossbarParams;
use crate::{ideal_mvm, XbarError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A randomly generated MVM stimulus: input voltages plus the
/// conductance state they are applied to.
#[derive(Debug, Clone, PartialEq)]
pub struct Stimulus {
    /// Input voltage vector (volts), entries in `[0, v_supply]`.
    pub voltages: Vec<f64>,
    /// Programmed conductance state.
    pub conductances: ConductanceMatrix,
}

/// Generates a random stimulus with the given input/weight sparsity.
///
/// `v_sparsity` / `g_sparsity` are the probabilities that an input is
/// 0 V or a device is at `g_off`, mirroring the sparsity the paper's
/// bit-sliced workloads exhibit. Non-zero inputs are quantized to a
/// small number of DAC levels, like a real bit-sliced input stream.
pub fn random_stimulus(
    params: &CrossbarParams,
    v_sparsity: f64,
    g_sparsity: f64,
    rng: &mut StdRng,
) -> Stimulus {
    let dac_levels = 16;
    let voltages = (0..params.rows)
        .map(|_| {
            if rng.gen::<f64>() < v_sparsity {
                0.0
            } else {
                let level = rng.gen_range(1..=dac_levels);
                params.v_supply * level as f64 / dac_levels as f64
            }
        })
        .collect();
    let conductances = ConductanceMatrix::random_sparse(params, g_sparsity, rng);
    Stimulus {
        voltages,
        conductances,
    }
}

/// One design point's NF distribution over a batch of random stimuli.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Human-readable label of the swept value (e.g. `"64"` or `"100k"`).
    pub label: String,
    /// NF summary across all stimuli and columns.
    pub summary: NfSummary,
    /// Raw NF samples, for scatter plots / downstream analysis.
    pub samples: Vec<f64>,
}

/// Runs `n_stimuli` random MVMs against the full nonlinear circuit at
/// one design point and summarizes the NF distribution.
///
/// # Errors
///
/// Propagates circuit construction/solve failures.
pub fn nf_distribution(
    params: &CrossbarParams,
    n_stimuli: usize,
    seed: u64,
    label: &str,
) -> Result<SweepPoint, XbarError> {
    // Draw every stimulus up front in the exact serial RNG order, then
    // run the expensive Newton solves in parallel and collect by
    // index: the sample stream is byte-identical to the serial path
    // for any GENIEX_THREADS.
    let mut rng = StdRng::seed_from_u64(seed);
    let stimuli: Vec<Stimulus> = (0..n_stimuli)
        .map(|_| {
            // Mix of sparsity regimes, as the paper's dataset generation does.
            let v_sparsity = rng.gen_range(0.0..0.9);
            let g_sparsity = rng.gen_range(0.0..0.9);
            random_stimulus(params, v_sparsity, g_sparsity, &mut rng)
        })
        .collect();
    let solved = parallel::par_map_grained(&stimuli, 1, |stimulus| -> Result<_, XbarError> {
        let circuit = CrossbarCircuit::new(params, &stimulus.conductances)?;
        let report = circuit.solve(&stimulus.voltages)?;
        let ideal = ideal_mvm(&stimulus.voltages, &stimulus.conductances)?;
        Ok(non_ideality_factors(&ideal, &report.currents))
    });
    let mut samples = Vec::new();
    for point in solved {
        samples.extend(point?);
    }
    let summary = NfSummary::from_samples(&samples).unwrap_or(NfSummary {
        count: 0,
        min: 0.0,
        q1: 0.0,
        median: 0.0,
        q3: 0.0,
        max: 0.0,
        mean: 0.0,
        rms: 0.0,
    });
    Ok(SweepPoint {
        label: label.to_owned(),
        summary,
        samples,
    })
}

/// Paired ideal and non-ideal currents from one batch of stimuli —
/// the raw material for the Fig. 2(a) scatter and Fig. 3 distributions.
#[derive(Debug, Clone, Default)]
pub struct CurrentPairs {
    /// Ideal currents (amperes), one entry per sensed column.
    pub ideal: Vec<f64>,
    /// Matching non-ideal currents from the circuit solver.
    pub non_ideal: Vec<f64>,
}

/// Collects paired ideal/non-ideal currents over random stimuli.
///
/// # Errors
///
/// Propagates circuit construction/solve failures.
pub fn current_pairs(
    params: &CrossbarParams,
    n_stimuli: usize,
    seed: u64,
) -> Result<CurrentPairs, XbarError> {
    // Same serial-RNG / parallel-solve split as `nf_distribution`.
    let mut rng = StdRng::seed_from_u64(seed);
    let stimuli: Vec<Stimulus> = (0..n_stimuli)
        .map(|_| {
            let v_sparsity = rng.gen_range(0.0..0.9);
            let g_sparsity = rng.gen_range(0.0..0.9);
            random_stimulus(params, v_sparsity, g_sparsity, &mut rng)
        })
        .collect();
    let solved = parallel::par_map_grained(&stimuli, 1, |stimulus| -> Result<_, XbarError> {
        let circuit = CrossbarCircuit::new(params, &stimulus.conductances)?;
        let report = circuit.solve(&stimulus.voltages)?;
        let ideal = ideal_mvm(&stimulus.voltages, &stimulus.conductances)?;
        Ok((ideal, report.currents))
    });
    let mut pairs = CurrentPairs::default();
    for point in solved {
        let (ideal, non_ideal) = point?;
        pairs.ideal.extend_from_slice(&ideal);
        pairs.non_ideal.extend_from_slice(&non_ideal);
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> CrossbarParams {
        CrossbarParams::builder(8, 8).build().unwrap()
    }

    #[test]
    fn stimulus_respects_sparsity_extremes() {
        let p = small_params();
        let mut rng = StdRng::seed_from_u64(1);
        let all_zero = random_stimulus(&p, 1.0, 1.0, &mut rng);
        assert!(all_zero.voltages.iter().all(|&v| v == 0.0));
        assert!(all_zero
            .conductances
            .as_slice()
            .iter()
            .all(|&g| (g - p.g_off()).abs() < 1e-18));

        let dense = random_stimulus(&p, 0.0, 0.0, &mut rng);
        assert!(dense.voltages.iter().all(|&v| v > 0.0 && v <= p.v_supply));
    }

    #[test]
    fn stimulus_is_deterministic_per_seed() {
        let p = small_params();
        let mut rng1 = StdRng::seed_from_u64(77);
        let mut rng2 = StdRng::seed_from_u64(77);
        let s1 = random_stimulus(&p, 0.5, 0.5, &mut rng1);
        let s2 = random_stimulus(&p, 0.5, 0.5, &mut rng2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn nf_distribution_tracks_size_trend() {
        // Small crossbars are boost-dominated (median NF below the
        // larger design's): the Fig. 2(b) monotonicity at sweep level.
        // 32 samples per size: with only a handful the medians are
        // close enough that the ordering flips on some seed streams.
        let p8 = small_params();
        let point8 = nf_distribution(&p8, 32, 42, "8x8").unwrap();
        assert!(point8.summary.count > 0);
        assert_eq!(point8.label, "8x8");
        let p16 = CrossbarParams::builder(16, 16).build().unwrap();
        let point16 = nf_distribution(&p16, 32, 42, "16x16").unwrap();
        assert!(
            point8.summary.median < point16.summary.median,
            "8x8 median {} should sit below 16x16 median {}",
            point8.summary.median,
            point16.summary.median
        );
    }

    #[test]
    fn current_pairs_align() {
        let p = small_params();
        let pairs = current_pairs(&p, 3, 5).unwrap();
        assert_eq!(pairs.ideal.len(), pairs.non_ideal.len());
        assert_eq!(pairs.ideal.len(), 3 * 8);
        assert!(pairs.non_ideal.iter().all(|i| i.is_finite()));
    }
}

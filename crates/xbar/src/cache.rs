//! Amortized solving: cached Jacobian factorizations keyed by circuit
//! content, shared across tiles and reused across batches of inputs.
//!
//! The functional simulator evaluates many MVMs against the *same*
//! programmed conductance matrix, yet a plain [`CrossbarCircuit::solve`]
//! re-derives everything per call: the cell linearization (one
//! transcendental `dI/dV` per cross-point per Newton iteration) and the
//! Thomas factorization of every tridiagonal chain (one division per
//! node per Gauss–Seidel sweep). This module factors that shared work
//! out:
//!
//! * [`JacobianFactorization`] — the Block-Gauss–Seidel operator frozen
//!   at the zero-bias linearization point: per-cell differential
//!   conductances plus the forward-eliminated Thomas factors
//!   (`1/denom`, `c'`) of every word-line and bit-line chain. Building
//!   it costs one exact factorization; applying it is multiply-only.
//!   Zero bias makes the factorization *input-independent*, so it is
//!   keyed purely by circuit content and safely shared between tiles
//!   programmed with the same matrix.
//! * [`SolverCache`] — the per-tile handle
//!   [`CrossbarCircuit::solve_amortized`] and
//!   [`CrossbarCircuit::solve_batch`] consume: the factorization plus
//!   the previous sample's node voltages for warm-starting Newton.
//! * A process-wide registry mapping [`CrossbarCircuit::solver_key`]
//!   (a [`store::Canonical`] content key over the design parameters,
//!   the programmed conductances, and the Newton options) to shared
//!   factorizations, so rebuilding a tile for the same programmed
//!   matrix — a clone, a re-tiled layer, a serve worker — reuses the
//!   factorization instead of recomputing it. Disable with
//!   `GENIEX_SOLVER_CACHE=off` (each cache then factorizes privately;
//!   warm starts are unaffected).
//!
//! # Invalidation
//!
//! A `SolverCache` never goes stale silently: every
//! `solve_amortized`/`solve_batch` call re-derives the circuit's
//! content key and compares it to the cached one. On mismatch the cache
//! re-keys — fetches or builds the right factorization and drops the
//! warm-start voltages (they belong to the old operating landscape).
//! Matching keys keep both. The warm start is additionally dropped
//! whenever a solve fails, so a diverged sample cannot poison the next
//! one.
//!
//! [`CrossbarCircuit::solve`]: crate::CrossbarCircuit::solve
//! [`CrossbarCircuit::solve_amortized`]: crate::CrossbarCircuit::solve_amortized
//! [`CrossbarCircuit::solve_batch`]: crate::CrossbarCircuit::solve_batch
//! [`CrossbarCircuit::solver_key`]: crate::CrossbarCircuit::solver_key

use crate::circuit::{metrics, CrossbarCircuit};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The Block-Gauss–Seidel correction operator of a programmed crossbar,
/// frozen at the zero-bias linearization point and fully factorized.
///
/// Holds, for every word-line and bit-line tridiagonal chain, the
/// forward-eliminated Thomas factors: the reciprocal pivots `1/denom_k`
/// and the eliminated super-diagonal `c'_k`. Applying the operator is
/// then two multiply-only sweeps per chain — no divisions, no
/// device-model evaluations.
///
/// Zero bias is the one linearization point that depends only on the
/// programmed state: `dI/dV(0)` of every calibrated cell equals its
/// programmed small-signal conductance. For linear devices the frozen
/// operator *is* the exact Jacobian; for `sinh`-family devices it is a
/// chord — the outer loop still damps and verifies the true KCL
/// residual, so convergence (not just the iterate) is exact either way
/// (see [`CrossbarCircuit::solve_amortized`]).
///
/// [`CrossbarCircuit::solve_amortized`]: crate::CrossbarCircuit::solve_amortized
#[derive(Debug)]
pub struct JacobianFactorization {
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    /// Per-cell differential conductance at zero bias, row-major.
    pub(crate) gd: Vec<f64>,
    /// Word-line chains (one per row, `cols` long), row-major: `1/denom`.
    pub(crate) w_inv_denom: Vec<f64>,
    /// Word-line chains: eliminated super-diagonal `c'`.
    pub(crate) w_c_prime: Vec<f64>,
    /// Bit-line chains (one per column, `rows` long), chain-major
    /// (`j * rows + i`): `1/denom`.
    pub(crate) b_inv_denom: Vec<f64>,
    /// Bit-line chains, chain-major: `c'`.
    pub(crate) b_c_prime: Vec<f64>,
}

impl JacobianFactorization {
    /// Crossbar rows the factorization was built for.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Crossbar columns the factorization was built for.
    pub fn cols(&self) -> usize {
        self.cols
    }
}

/// Applies a prefactorized symmetric tridiagonal solve: forward
/// substitution with cached reciprocal pivots, then back substitution
/// with the cached eliminated super-diagonal. Multiply-only — the
/// divisions were paid once at factorization time.
#[inline]
pub(crate) fn thomas_apply(
    inv_denom: &[f64],
    c_prime: &[f64],
    off: f64,
    rhs: &[f64],
    sol: &mut [f64],
) {
    let n = rhs.len();
    sol[0] = rhs[0] * inv_denom[0];
    for k in 1..n {
        sol[k] = (rhs[k] - off * sol[k - 1]) * inv_denom[k];
    }
    for k in (0..n.saturating_sub(1)).rev() {
        sol[k] -= c_prime[k] * sol[k + 1];
    }
}

/// Cap on the process-wide factorization registry. Each entry is
/// ~`5 × rows × cols` f64s; 64 entries of 64×64 tiles ≈ 10 MB. When
/// full, new factorizations are still returned to the caller but not
/// retained (no eviction — eviction order would be nondeterministic).
const REGISTRY_CAP: usize = 64;

fn registry() -> &'static Mutex<HashMap<store::Key, Arc<JacobianFactorization>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<store::Key, Arc<JacobianFactorization>>>> =
        OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// `GENIEX_SOLVER_CACHE=off` disables the cross-tile registry (each
/// [`SolverCache`] then factorizes privately). Read once per process.
fn registry_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("GENIEX_SOLVER_CACHE")
            .map(|v| v != "off")
            .unwrap_or(true)
    })
}

/// Fetches the factorization for `key` from the registry, building it
/// from `circuit` on a miss.
fn fetch_or_build(key: store::Key, circuit: &CrossbarCircuit) -> Arc<JacobianFactorization> {
    if !registry_enabled() {
        return Arc::new(circuit.factorize());
    }
    let m = metrics();
    if let Some(hit) = registry()
        .lock()
        .expect("solver cache registry poisoned")
        .get(&key)
        .cloned()
    {
        if telemetry::enabled() {
            m.cache_hits.inc();
        }
        return hit;
    }
    if telemetry::enabled() {
        m.cache_misses.inc();
    }
    let built = Arc::new(circuit.factorize());
    let mut reg = registry().lock().expect("solver cache registry poisoned");
    if reg.len() < REGISTRY_CAP {
        reg.entry(key).or_insert_with(|| built.clone());
    }
    built
}

/// Per-tile amortization state for [`CrossbarCircuit::solve_amortized`]
/// and [`CrossbarCircuit::solve_batch`]: the (possibly shared) frozen
/// Jacobian factorization plus the previous converged node voltages for
/// warm-starting the next sample.
///
/// The cache is self-validating: it remembers the content key
/// ([`CrossbarCircuit::solver_key`]) it was built for and re-keys
/// automatically when handed a circuit with different content — so it
/// is always safe to reuse, just fastest when the circuit actually
/// stays the same.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), xbar::XbarError> {
/// use xbar::{ConductanceMatrix, CrossbarCircuit, CrossbarParams, SolverCache};
///
/// let params = CrossbarParams::builder(4, 4).build()?;
/// let g = ConductanceMatrix::uniform(4, 4, params.g_on());
/// let circuit = CrossbarCircuit::new(&params, &g)?;
/// let mut cache = SolverCache::for_circuit(&circuit);
///
/// let v = vec![params.v_supply; 4];
/// let cold = circuit.solve(&v)?;
/// let amortized = circuit.solve_amortized(&v, &mut cache)?;
/// for (a, b) in amortized.currents.iter().zip(&cold.currents) {
///     assert!((a - b).abs() <= 1e-6 * b.abs() + 1e-10);
/// }
/// // A second solve of the same input warm-starts from the converged
/// // point: zero Newton iterations, bit-identical currents.
/// let again = circuit.solve_amortized(&v, &mut cache)?;
/// assert_eq!(again.newton_iterations, 0);
/// assert_eq!(again.currents, amortized.currents);
/// # Ok(())
/// # }
/// ```
///
/// [`CrossbarCircuit::solve_amortized`]: crate::CrossbarCircuit::solve_amortized
/// [`CrossbarCircuit::solve_batch`]: crate::CrossbarCircuit::solve_batch
/// [`CrossbarCircuit::solver_key`]: crate::CrossbarCircuit::solver_key
#[derive(Debug, Clone)]
pub struct SolverCache {
    key: store::Key,
    factorization: Arc<JacobianFactorization>,
    warm: Option<WarmState>,
    /// Per-cell internal-node voltages (series 1T1R cells), row-major,
    /// NaN = no guess yet. A pure performance hint for the per-cell
    /// scalar Newton: the converged internal voltage never depends on
    /// its starting guess, so this carries across samples — and even
    /// across re-keys it would merely be a bad guess, but it is cleared
    /// with the warm start for symmetry.
    internal: Vec<f64>,
}

/// The previous converged operating point, carried between amortized
/// solves by [`SolverCache`].
#[derive(Debug, Clone)]
pub(crate) struct WarmState {
    /// Converged node voltages — the next solve's Newton seed.
    pub(crate) x: Vec<f64>,
    /// The solve's full context, present only when the previous solve
    /// completed on the amortized path itself (the exact-Newton
    /// fallback reports only voltages). With it, the next warm solve
    /// skips its initial residual evaluation entirely: the inputs enter
    /// the KCL system only through the driver source terms, so the
    /// stored residual is updated to the new inputs in O(rows).
    pub(crate) context: Option<WarmContext>,
}

/// Residual context of a completed amortized solve: everything needed
/// to restart Newton at the stored `x` under *new* inputs without
/// re-evaluating a single device model.
#[derive(Debug, Clone)]
pub(crate) struct WarmContext {
    /// The inputs the residual was evaluated under.
    pub(crate) v: Vec<f64>,
    /// KCL residual `F(x; v)` at the converged point.
    pub(crate) residual: Vec<f64>,
    /// Per-cell differential conductances at the converged point.
    pub(crate) gd: Vec<f64>,
    /// How many consecutive O(rows) driver-term adjustments this
    /// residual has absorbed without a full re-evaluation. Each
    /// adjustment adds one rounding at the driver nodes; solves that
    /// iterate re-evaluate the residual and reset the count, and the
    /// consumer forces a fresh evaluation past a small cap so the
    /// drift stays orders of magnitude below the solve tolerance.
    pub(crate) adjustments: u32,
}

impl SolverCache {
    /// Builds (or fetches from the process-wide registry) the
    /// factorization for `circuit` and returns a cache with no
    /// warm-start state.
    pub fn for_circuit(circuit: &CrossbarCircuit) -> Self {
        let key = circuit.solver_key();
        SolverCache {
            key,
            factorization: fetch_or_build(key, circuit),
            warm: None,
            internal: Vec::new(),
        }
    }

    /// The content key ([`CrossbarCircuit::solver_key`]) the cached
    /// factorization belongs to.
    ///
    /// [`CrossbarCircuit::solver_key`]: crate::CrossbarCircuit::solver_key
    pub fn key(&self) -> store::Key {
        self.key
    }

    /// The cached frozen-Jacobian factorization.
    pub fn factorization(&self) -> &Arc<JacobianFactorization> {
        &self.factorization
    }

    /// The node voltages the next solve will warm-start from, if any.
    pub fn warm_start(&self) -> Option<&[f64]> {
        self.warm.as_ref().map(|w| w.x.as_slice())
    }

    /// Drops the warm-start voltages (the factorization is kept — it
    /// does not depend on the operating point).
    pub fn clear_warm_start(&mut self) {
        self.warm = None;
    }

    /// Re-keys the cache if `circuit`'s content no longer matches,
    /// dropping the warm start in that case (it described a different
    /// circuit's operating point).
    pub(crate) fn ensure(&mut self, circuit: &CrossbarCircuit) {
        let key = circuit.solver_key();
        if key != self.key {
            if telemetry::enabled() {
                metrics().cache_rekeys.inc();
            }
            *self = SolverCache::for_circuit(circuit);
        }
    }

    pub(crate) fn set_warm(&mut self, warm: WarmState) {
        self.warm = Some(warm);
    }

    /// Takes the warm state out of the cache: the solve in flight owns
    /// it, and only a *successful* solve puts its converged state back
    /// — the failure-drops-warm-start rule.
    pub(crate) fn take_warm(&mut self) -> Option<WarmState> {
        self.warm.take()
    }

    /// Takes the per-cell internal-node voltages for a solve over
    /// `half = rows * cols` cells, handing out a fresh NaN-filled
    /// ("no guess") vector when none of the right shape is cached.
    pub(crate) fn take_internal(&mut self, half: usize) -> Vec<f64> {
        if self.internal.len() == half {
            std::mem::take(&mut self.internal)
        } else {
            vec![f64::NAN; half]
        }
    }

    pub(crate) fn set_internal(&mut self, u: Vec<f64>) {
        self.internal = u;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConductanceMatrix, CrossbarParams, LinearSolverKind, NewtonOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn circuit(seed: u64) -> CrossbarCircuit {
        let p = CrossbarParams::builder(5, 4).build().unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let g = ConductanceMatrix::random_sparse(&p, 0.5, &mut rng);
        CrossbarCircuit::new(&p, &g).unwrap()
    }

    #[test]
    fn solver_key_is_content_derived() {
        // Same content, different instances: same key. Different
        // conductances or options: different keys.
        let a = circuit(1);
        let b = circuit(1);
        let c = circuit(2);
        assert_eq!(a.solver_key(), b.solver_key());
        assert_ne!(a.solver_key(), c.solver_key());

        let p = CrossbarParams::builder(5, 4).build().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let g = ConductanceMatrix::random_sparse(&p, 0.5, &mut rng);
        let cg = CrossbarCircuit::with_options(
            &p,
            &g,
            NewtonOptions {
                linear_solver: LinearSolverKind::ConjugateGradient,
                ..NewtonOptions::default()
            },
        )
        .unwrap();
        assert_ne!(a.solver_key(), cg.solver_key());
    }

    #[test]
    fn registry_shares_factorizations_across_instances() {
        let a = circuit(7);
        let b = circuit(7);
        let cache_a = SolverCache::for_circuit(&a);
        let cache_b = SolverCache::for_circuit(&b);
        assert!(Arc::ptr_eq(
            cache_a.factorization(),
            cache_b.factorization()
        ));
    }

    #[test]
    fn rekey_on_circuit_change_drops_warm_start() {
        let a = circuit(3);
        let b = circuit(4);
        let mut cache = SolverCache::for_circuit(&a);
        let v = vec![0.2; 5];
        a.solve_amortized(&v, &mut cache).unwrap();
        assert!(cache.warm_start().is_some());
        // Handing the cache a different circuit re-keys and clears the
        // warm start before solving.
        let report = b.solve_amortized(&v, &mut cache).unwrap();
        assert!(!report.warm_start);
        assert_eq!(cache.key(), b.solver_key());
    }

    #[test]
    fn factorization_shape_accessors() {
        let a = circuit(9);
        let cache = SolverCache::for_circuit(&a);
        assert_eq!(cache.factorization().rows(), 5);
        assert_eq!(cache.factorization().cols(), 4);
    }
}

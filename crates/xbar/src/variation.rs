//! Device-to-device variation and defect models.
//!
//! The paper notes that non-ideality effects "get exacerbated further
//! due to the device variations" (Section 1) and cites defect-mapping
//! approaches (stuck-at faults [14], variations [15]) as the other
//! family of crossbar models. This module provides both as a transform
//! over programmed conductance states, so any backend — circuit,
//! analytical, or GENIEx — can be evaluated under imperfect
//! programming.
//!
//! * **Lognormal conductance variation**: `g' = g · exp(σ·z)`, the
//!   standard model for RRAM programming spread, clamped to the
//!   physical `[0, g_on]` range.
//! * **Stuck-at faults**: a device is stuck at `g_off` (stuck-open
//!   filament) or at `g_on` (shorted cell) regardless of the target.

use crate::conductance::ConductanceMatrix;
use crate::params::CrossbarParams;
use crate::XbarError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of programming imperfections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationConfig {
    /// Sigma of the lognormal conductance spread (0 disables).
    pub conductance_sigma: f64,
    /// Probability a device is stuck at `g_off`.
    pub stuck_off_rate: f64,
    /// Probability a device is stuck at `g_on`.
    pub stuck_on_rate: f64,
    /// RNG seed: the fault pattern is deterministic per seed, as a
    /// physical chip's defect map is fixed.
    pub seed: u64,
}

impl VariationConfig {
    /// No variations at all (the identity transform).
    pub fn none() -> Self {
        VariationConfig {
            conductance_sigma: 0.0,
            stuck_off_rate: 0.0,
            stuck_on_rate: 0.0,
            seed: 0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidParameter`] for negative sigma or
    /// fault rates outside `[0, 1]` (jointly ≤ 1).
    pub fn validate(&self) -> Result<(), XbarError> {
        if !self.conductance_sigma.is_finite() || self.conductance_sigma < 0.0 {
            return Err(XbarError::InvalidParameter(format!(
                "conductance_sigma must be >= 0, got {}",
                self.conductance_sigma
            )));
        }
        for (name, r) in [
            ("stuck_off_rate", self.stuck_off_rate),
            ("stuck_on_rate", self.stuck_on_rate),
        ] {
            if !(0.0..=1.0).contains(&r) {
                return Err(XbarError::InvalidParameter(format!(
                    "{name} must be in [0, 1], got {r}"
                )));
            }
        }
        if self.stuck_off_rate + self.stuck_on_rate > 1.0 {
            return Err(XbarError::InvalidParameter(
                "stuck_off_rate + stuck_on_rate must not exceed 1".into(),
            ));
        }
        Ok(())
    }

    /// True if this configuration changes nothing.
    pub fn is_none(&self) -> bool {
        self.conductance_sigma == 0.0 && self.stuck_off_rate == 0.0 && self.stuck_on_rate == 0.0
    }
}

impl Default for VariationConfig {
    fn default() -> Self {
        VariationConfig::none()
    }
}

/// Standard-normal sample via Box–Muller (keeps the dependency set to
/// plain `rand`).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Applies programming imperfections to a target conductance state.
///
/// The same `config.seed` always produces the same defect map and the
/// same per-device spread — mirroring a physical chip whose faults are
/// fixed at manufacturing.
///
/// # Errors
///
/// * Propagates [`VariationConfig::validate`] failures.
/// * Returns [`XbarError::Shape`] if `target` does not match `params`.
pub fn apply_variations(
    params: &CrossbarParams,
    target: &ConductanceMatrix,
    config: &VariationConfig,
) -> Result<ConductanceMatrix, XbarError> {
    config.validate()?;
    if target.rows() != params.rows || target.cols() != params.cols {
        return Err(XbarError::Shape(format!(
            "conductance matrix is {}x{} but crossbar is {}x{}",
            target.rows(),
            target.cols(),
            params.rows,
            params.cols
        )));
    }
    if config.is_none() {
        return Ok(target.clone());
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let g_on = params.g_on();
    let g_off = params.g_off();
    let mut out = target.clone();
    for i in 0..params.rows {
        for j in 0..params.cols {
            // Draw the fault roll and the spread sample unconditionally
            // so the defect map is independent of which effects are
            // enabled.
            let fault_roll: f64 = rng.gen();
            let z = standard_normal(&mut rng);
            let g = if fault_roll < config.stuck_off_rate {
                g_off
            } else if fault_roll < config.stuck_off_rate + config.stuck_on_rate {
                g_on
            } else if config.conductance_sigma > 0.0 {
                (target.get(i, j) * (config.conductance_sigma * z).exp()).clamp(0.0, g_on)
            } else {
                target.get(i, j)
            };
            out.set(i, j, g);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CrossbarParams {
        CrossbarParams::builder(16, 16).build().unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(VariationConfig::none().validate().is_ok());
        assert!(VariationConfig {
            conductance_sigma: -0.1,
            ..VariationConfig::none()
        }
        .validate()
        .is_err());
        assert!(VariationConfig {
            stuck_off_rate: 1.5,
            ..VariationConfig::none()
        }
        .validate()
        .is_err());
        assert!(VariationConfig {
            stuck_off_rate: 0.6,
            stuck_on_rate: 0.6,
            ..VariationConfig::none()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn identity_when_disabled() {
        let p = params();
        let g = ConductanceMatrix::uniform(16, 16, p.g_on() * 0.5);
        let out = apply_variations(&p, &g, &VariationConfig::none()).unwrap();
        assert_eq!(out, g);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = params();
        let g = ConductanceMatrix::uniform(16, 16, p.g_on() * 0.5);
        let cfg = VariationConfig {
            conductance_sigma: 0.2,
            stuck_off_rate: 0.01,
            stuck_on_rate: 0.01,
            seed: 42,
        };
        let a = apply_variations(&p, &g, &cfg).unwrap();
        let b = apply_variations(&p, &g, &cfg).unwrap();
        assert_eq!(a, b);
        let c = apply_variations(&p, &g, &VariationConfig { seed: 43, ..cfg }).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn spread_is_centered_and_clamped() {
        let p = params();
        let g0 = p.g_on() * 0.5;
        let g = ConductanceMatrix::uniform(16, 16, g0);
        let out = apply_variations(
            &p,
            &g,
            &VariationConfig {
                conductance_sigma: 0.1,
                seed: 3,
                ..VariationConfig::none()
            },
        )
        .unwrap();
        let mean: f64 = out.as_slice().iter().sum::<f64>() / 256.0;
        // Lognormal with small sigma: mean close to the target.
        assert!((mean - g0).abs() < 0.05 * g0, "mean {mean} vs target {g0}");
        assert!(out
            .as_slice()
            .iter()
            .all(|&x| (0.0..=p.g_on()).contains(&x)));
        // Actually spread out.
        assert!(out.as_slice().iter().any(|&x| (x - g0).abs() > 0.01 * g0));
    }

    #[test]
    fn stuck_rates_are_respected() {
        let p = params();
        let g = ConductanceMatrix::uniform(16, 16, p.g_on() * 0.5);
        let out = apply_variations(
            &p,
            &g,
            &VariationConfig {
                stuck_off_rate: 0.25,
                stuck_on_rate: 0.25,
                seed: 9,
                ..VariationConfig::none()
            },
        )
        .unwrap();
        let stuck_off = out
            .as_slice()
            .iter()
            .filter(|&&x| (x - p.g_off()).abs() < 1e-18)
            .count();
        let stuck_on = out
            .as_slice()
            .iter()
            .filter(|&&x| (x - p.g_on()).abs() < 1e-18)
            .count();
        // 256 devices at 25% each: expect roughly 64 ± a generous margin.
        assert!((30..=100).contains(&stuck_off), "stuck off {stuck_off}");
        assert!((30..=100).contains(&stuck_on), "stuck on {stuck_on}");
    }

    #[test]
    fn shape_mismatch_rejected() {
        let p = params();
        let g = ConductanceMatrix::uniform(8, 8, 1e-5);
        assert!(apply_variations(&p, &g, &VariationConfig::none()).is_err());
    }
}

//! SPICE netlist export.
//!
//! Emits the exact parasitic crossbar this crate solves as a SPICE
//! deck, so the solver can be cross-checked against an external
//! simulator (ngspice/HSPICE) — the reverse of the substitution this
//! reproduction makes. Linear elements map to `R` cards; the RRAM and
//! access devices map to behavioural current sources (`B` cards,
//! ngspice syntax) with the same `sinh`/`tanh` laws and the same
//! closed-loop conductance calibration as [`crate::CrossbarCircuit`].

use crate::conductance::ConductanceMatrix;
use crate::params::CrossbarParams;
use crate::XbarError;
use std::fmt::Write as _;

/// Renders a SPICE deck for the crossbar at one operating point.
///
/// Node naming: word-line segments are `w_i_j`, bit-line segments
/// `b_i_j`, cell-internal nodes `m_i_j` (present only when the access
/// device is enabled), drivers `in_i`.
///
/// The deck ends with a `.op` card and prints the sink currents.
///
/// # Errors
///
/// * [`XbarError::Shape`] if `g` does not match `params`.
/// * [`XbarError::Shape`] if `v.len() != params.rows`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), xbar::XbarError> {
/// use xbar::{netlist, ConductanceMatrix, CrossbarParams};
/// let params = CrossbarParams::builder(2, 2).build()?;
/// let g = ConductanceMatrix::uniform(2, 2, params.g_on());
/// let deck = netlist::to_spice(&params, &g, &[0.25, 0.25])?;
/// assert!(deck.contains(".op"));
/// assert!(deck.contains("Rwire_w_0_0"));
/// # Ok(())
/// # }
/// ```
pub fn to_spice(
    params: &CrossbarParams,
    g: &ConductanceMatrix,
    v: &[f64],
) -> Result<String, XbarError> {
    if g.rows() != params.rows || g.cols() != params.cols {
        return Err(XbarError::Shape(format!(
            "conductance matrix is {}x{} but crossbar is {}x{}",
            g.rows(),
            g.cols(),
            params.rows,
            params.cols
        )));
    }
    if v.len() != params.rows {
        return Err(XbarError::Shape(format!(
            "{} input voltages for {} word lines",
            v.len(),
            params.rows
        )));
    }

    let cfg = params.nonideality;
    let dev = &params.device;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "* GENIEx reproduction crossbar: {}x{}, Ron={} ohm, ON/OFF={}",
        params.rows, params.cols, params.r_on, params.on_off_ratio
    );
    let _ = writeln!(
        out,
        "* parasitics: Rsource={} Rsink={} Rwire={} (ohm)",
        params.r_source, params.r_sink, params.r_wire
    );

    // Drivers and source resistances.
    for i in 0..params.rows {
        let _ = writeln!(out, "Vin_{i} in_{i} 0 DC {v}", v = v[i]);
        let _ = writeln!(out, "Rsource_{i} in_{i} w_{i}_0 {r}", r = params.r_source);
    }
    // Word-line wire segments.
    for i in 0..params.rows {
        for j in 0..params.cols.saturating_sub(1) {
            let _ = writeln!(
                out,
                "Rwire_w_{i}_{j} w_{i}_{j} w_{i}_{jn} {r}",
                jn = j + 1,
                r = params.r_wire
            );
        }
    }
    // Bit-line wire segments and sinks.
    for j in 0..params.cols {
        for i in 0..params.rows.saturating_sub(1) {
            let _ = writeln!(
                out,
                "Rwire_b_{i}_{j} b_{i}_{j} b_{inn}_{j} {r}",
                inn = i + 1,
                r = params.r_wire
            );
        }
        let _ = writeln!(
            out,
            "Rsink_{j} b_{last}_{j} 0 {r}",
            last = params.rows - 1,
            r = params.r_sink
        );
    }

    // Cross-point devices.
    for i in 0..params.rows {
        for j in 0..params.cols {
            let gij = g.get(i, j);
            match (cfg.device_nonlinearity, cfg.access_device) {
                (false, false) => {
                    // Plain resistor (guard against a fully open cell).
                    let r = if gij > 0.0 {
                        format!("{}", 1.0 / gij)
                    } else {
                        "1e15".to_string()
                    };
                    let _ = writeln!(out, "Rcell_{i}_{j} w_{i}_{j} b_{i}_{j} {r}");
                }
                (true, false) => {
                    // Behavioural sinh source, small-signal calibrated.
                    let a = gij * dev.v0;
                    let _ = writeln!(
                        out,
                        "Bcell_{i}_{j} w_{i}_{j} b_{i}_{j} I={a}*sinh((V(w_{i}_{j})-V(b_{i}_{j}))/{v0})",
                        v0 = dev.v0
                    );
                }
                (nonlinear, true) => {
                    // Series access device + memristor through the
                    // internal node, with closed-loop calibration.
                    if gij >= dev.access_g {
                        return Err(XbarError::InvalidParameter(format!(
                            "programmed conductance {gij} S is not reachable \
                             through an access device of {} S",
                            dev.access_g
                        )));
                    }
                    let g_m = gij * dev.access_g / (dev.access_g - gij);
                    let _ = writeln!(
                        out,
                        "Bacc_{i}_{j} w_{i}_{j} m_{i}_{j} I={ga}*{vs}*tanh((V(w_{i}_{j})-V(m_{i}_{j}))/{vs})",
                        ga = dev.access_g,
                        vs = dev.access_v_sat
                    );
                    if nonlinear {
                        let a = g_m * dev.v0;
                        let _ = writeln!(
                            out,
                            "Bmem_{i}_{j} m_{i}_{j} b_{i}_{j} I={a}*sinh((V(m_{i}_{j})-V(b_{i}_{j}))/{v0})",
                            v0 = dev.v0
                        );
                    } else {
                        let r = if g_m > 0.0 {
                            format!("{}", 1.0 / g_m)
                        } else {
                            "1e15".to_string()
                        };
                        let _ = writeln!(out, "Rmem_{i}_{j} m_{i}_{j} b_{i}_{j} {r}");
                    }
                }
            }
        }
    }

    let _ = writeln!(out, ".op");
    let currents: Vec<String> = (0..params.cols).map(|j| format!("i(Rsink_{j})")).collect();
    let _ = writeln!(out, ".print op {}", currents.join(" "));
    let _ = writeln!(out, ".end");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::NonIdealityConfig;

    fn params() -> CrossbarParams {
        CrossbarParams::builder(3, 2).build().unwrap()
    }

    #[test]
    fn full_deck_structure() {
        let p = params();
        let g = ConductanceMatrix::uniform(3, 2, p.g_on());
        let deck = to_spice(&p, &g, &[0.25, 0.1, 0.0]).unwrap();
        // Count element *cards* (lines starting with the name — the
        // .print card mentions sinks too).
        let cards = |prefix: &str| deck.lines().filter(|l| l.starts_with(prefix)).count();
        // 3 drivers, 3 source resistors, 2 sinks.
        assert_eq!(cards("Vin_"), 3);
        assert_eq!(cards("Rsource_"), 3);
        assert_eq!(cards("Rsink_"), 2);
        // WL wires: 3 rows x 1 segment; BL wires: 2 cols x 2 segments.
        assert_eq!(cards("Rwire_w_"), 3);
        assert_eq!(cards("Rwire_b_"), 4);
        // Full 1T1R cells: access + memristor per junction.
        assert_eq!(cards("Bacc_"), 6);
        assert_eq!(cards("Bmem_"), 6);
        assert!(deck.contains(".op"));
        assert!(deck.trim_end().ends_with(".end"));
    }

    #[test]
    fn linear_only_uses_resistors() {
        let mut p = params();
        p.nonideality = NonIdealityConfig::linear_only();
        let g = ConductanceMatrix::uniform(3, 2, p.g_on());
        let deck = to_spice(&p, &g, &[0.25, 0.1, 0.0]).unwrap();
        assert_eq!(deck.matches("Rcell_").count(), 6);
        assert!(!deck.contains("Bacc_"));
        assert!(!deck.contains("sinh"));
    }

    #[test]
    fn device_only_uses_sinh_sources() {
        let mut p = params();
        p.nonideality.access_device = false;
        let g = ConductanceMatrix::uniform(3, 2, p.g_on());
        let deck = to_spice(&p, &g, &[0.25, 0.1, 0.0]).unwrap();
        assert_eq!(deck.matches("Bcell_").count(), 6);
        assert!(deck.contains("sinh"));
        assert!(!deck.contains("tanh"));
    }

    #[test]
    fn zero_conductance_cell_is_open() {
        let mut p = params();
        p.nonideality = NonIdealityConfig::linear_only();
        let mut g = ConductanceMatrix::uniform(3, 2, p.g_on());
        g.set(0, 0, 0.0);
        let deck = to_spice(&p, &g, &[0.25, 0.1, 0.0]).unwrap();
        assert!(deck.contains("Rcell_0_0 w_0_0 b_0_0 1e15"));
    }

    #[test]
    fn shape_validation() {
        let p = params();
        let g = ConductanceMatrix::uniform(2, 2, 1e-5);
        assert!(to_spice(&p, &g, &[0.1, 0.1, 0.1]).is_err());
        let g = ConductanceMatrix::uniform(3, 2, 1e-5);
        assert!(to_spice(&p, &g, &[0.1]).is_err());
    }
}

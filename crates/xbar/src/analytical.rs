//! The linear analytical baseline model.
//!
//! Analytical crossbar models (CxDNN [Jain & Raghunathan 2019] and
//! relatives) capture only the *linear* non-idealities: the parasitic
//! source/sink/wire resistances. Devices are taken at their programmed
//! conductance, ignoring the sinh I-V and the access device. The
//! resulting circuit is linear in the input voltages, so for a fixed
//! conductance state `G` the whole crossbar collapses to an effective
//! matrix `M(G)` with `I_out = M(G) · V` — which is exactly the matrix
//! -inversion technique those papers use, and what makes the analytical
//! backend of the functional simulator fast.
//!
//! GENIEx's claim (reproduced here) is that this model *overestimates*
//! accuracy degradation, because the device non-linearity it ignores
//! partially re-idealizes the crossbar at high voltage.

use crate::circuit::{CrossbarCircuit, NewtonOptions};
use crate::conductance::ConductanceMatrix;
use crate::params::{CrossbarParams, NonIdealityConfig};
use crate::XbarError;
use linalg::Mat;

/// The linear analytical model of a programmed crossbar.
///
/// Construction extracts the effective matrix `M(G)` column-by-column
/// by solving the linear parasitic circuit against unit input vectors;
/// afterwards every [`mvm`](AnalyticalModel::mvm) is a dense
/// matrix-vector product.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), xbar::XbarError> {
/// use xbar::{AnalyticalModel, ConductanceMatrix, CrossbarParams, ideal_mvm};
///
/// let params = CrossbarParams::builder(4, 4).build()?;
/// let g = ConductanceMatrix::uniform(4, 4, params.g_on());
/// let model = AnalyticalModel::new(&params, &g)?;
/// let v = vec![params.v_supply; 4];
/// let i_model = model.mvm(&v)?;
/// let i_ideal = ideal_mvm(&v, &g)?;
/// // The linear model only loses current to parasitics.
/// assert!(i_model[0] < i_ideal[0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AnalyticalModel {
    /// Effective transfer matrix: `cols x rows`, `I = M · V`.
    effective: Mat,
    rows: usize,
    cols: usize,
}

impl AnalyticalModel {
    /// Builds the analytical model for conductance state `g`.
    ///
    /// The model always uses [`NonIdealityConfig::linear_only`]
    /// regardless of what `params.nonideality` says — that is its
    /// defining limitation.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying circuit and
    /// [`XbarError::NewtonDiverged`] if a unit solve fails (the linear
    /// circuit converges in one Newton step, so this indicates broken
    /// parameters).
    pub fn new(params: &CrossbarParams, g: &ConductanceMatrix) -> Result<Self, XbarError> {
        let mut linear_params = params.clone();
        linear_params.nonideality = NonIdealityConfig {
            parasitics: params.nonideality.parasitics,
            device_nonlinearity: false,
            access_device: false,
        };
        let circuit = CrossbarCircuit::with_options(&linear_params, g, NewtonOptions::default())?;

        let (rows, cols) = (params.rows, params.cols);
        // Column k of M is the response to the unit vector e_k. Unit
        // amplitude v_supply keeps the solves well-scaled; linearity
        // lets us divide it back out.
        let amplitude = params.v_supply;
        let mut effective = Mat::zeros(cols, rows);
        let mut v = vec![0.0; rows];
        for k in 0..rows {
            v[k] = amplitude;
            let report = circuit.solve(&v)?;
            for j in 0..cols {
                effective[(j, k)] = report.currents[j] / amplitude;
            }
            v[k] = 0.0;
        }
        Ok(AnalyticalModel {
            effective,
            rows,
            cols,
        })
    }

    /// Predicted non-ideal output currents for input voltages `v`.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::Shape`] if `v.len()` does not match the
    /// crossbar's row count.
    pub fn mvm(&self, v: &[f64]) -> Result<Vec<f64>, XbarError> {
        if v.len() != self.rows {
            return Err(XbarError::Shape(format!(
                "analytical mvm: {} inputs for {} word lines",
                v.len(),
                self.rows
            )));
        }
        Ok(self.effective.matvec(v)?)
    }

    /// The effective transfer matrix `M(G)` (`cols x rows`).
    pub fn effective_matrix(&self) -> &Mat {
        &self.effective
    }

    /// Crossbar input dimension (word lines).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Crossbar output dimension (bit lines).
    pub fn cols(&self) -> usize {
        self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal_mvm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(n: usize) -> CrossbarParams {
        CrossbarParams::builder(n, n).build().unwrap()
    }

    #[test]
    fn matches_linear_circuit_exactly() {
        let p = params(6);
        let mut rng = StdRng::seed_from_u64(21);
        let g = ConductanceMatrix::random_sparse(&p, 0.4, &mut rng);
        let model = AnalyticalModel::new(&p, &g).unwrap();

        let mut linear_params = p.clone();
        linear_params.nonideality = NonIdealityConfig::linear_only();
        let circuit = CrossbarCircuit::new(&linear_params, &g).unwrap();

        let v = vec![0.25, 0.0, 0.125, 0.1875, 0.0625, 0.25];
        let from_model = model.mvm(&v).unwrap();
        let from_circuit = circuit.solve(&v).unwrap().currents;
        for (a, b) in from_model.iter().zip(&from_circuit) {
            assert!(
                (a - b).abs() < 1e-10 * b.abs().max(1e-12),
                "model {a} vs circuit {b}"
            );
        }
    }

    #[test]
    fn linearity_superposition() {
        let p = params(4);
        let g = ConductanceMatrix::uniform(4, 4, p.g_on());
        let model = AnalyticalModel::new(&p, &g).unwrap();
        let v1 = vec![0.1, 0.0, 0.05, 0.2];
        let v2 = vec![0.0, 0.15, 0.1, 0.0];
        let sum: Vec<f64> = v1.iter().zip(&v2).map(|(a, b)| a + b).collect();
        let i1 = model.mvm(&v1).unwrap();
        let i2 = model.mvm(&v2).unwrap();
        let i_sum = model.mvm(&sum).unwrap();
        for j in 0..4 {
            assert!((i1[j] + i2[j] - i_sum[j]).abs() < 1e-15);
        }
    }

    #[test]
    fn below_ideal_everywhere_for_positive_inputs() {
        let p = params(8);
        let mut rng = StdRng::seed_from_u64(9);
        let g = ConductanceMatrix::random_sparse(&p, 0.2, &mut rng);
        let model = AnalyticalModel::new(&p, &g).unwrap();
        let v = vec![p.v_supply; 8];
        let predicted = model.mvm(&v).unwrap();
        let ideal = ideal_mvm(&v, &g).unwrap();
        for (m, i) in predicted.iter().zip(&ideal) {
            assert!(m <= i);
            assert!(*m > 0.0);
        }
    }

    #[test]
    fn shape_validation() {
        let p = params(4);
        let g = ConductanceMatrix::uniform(4, 4, 1e-5);
        let model = AnalyticalModel::new(&p, &g).unwrap();
        assert!(model.mvm(&[0.1; 3]).is_err());
        assert_eq!(model.rows(), 4);
        assert_eq!(model.cols(), 4);
        assert_eq!(model.effective_matrix().rows(), 4);
    }

    #[test]
    fn ignores_nonlinear_config_flags() {
        // Building from params with all non-idealities enabled must
        // still produce the *linear* model.
        let p = params(4); // nonideality = all()
        let g = ConductanceMatrix::uniform(4, 4, p.g_on());
        let model = AnalyticalModel::new(&p, &g).unwrap();
        // Superposition must hold exactly — the nonlinear circuit would
        // violate it.
        let i1 = model.mvm(&[0.2, 0.0, 0.0, 0.0]).unwrap();
        let i2 = model.mvm(&[0.0, 0.2, 0.0, 0.0]).unwrap();
        let i12 = model.mvm(&[0.2, 0.2, 0.0, 0.0]).unwrap();
        for j in 0..4 {
            assert!((i1[j] + i2[j] - i12[j]).abs() < 1e-15);
        }
    }
}

//! Lane-blocked reductions and element-wise vector kernels.

use crate::{reduce_lanes_f32, reduce_lanes_f64, LANES};

/// Deterministic 8-lane dot product over `f32` slices.
///
/// Lane `l` accumulates products at indices `i ≡ l (mod 8)` in
/// ascending order; lanes reduce with the fixed tree of
/// [`reduce_lanes_f32`]. The result is a pure function of the inputs —
/// bit-identical at any thread count or call site.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot_f32: length mismatch");
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            acc[l] += xa[l] * xb[l];
        }
    }
    for (l, (x, y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        acc[l] += x * y;
    }
    reduce_lanes_f32(&acc)
}

/// Deterministic 8-lane dot product over `f64` slices.
///
/// Same lane and tree spec as [`dot_f32`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot_f64(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot_f64: length mismatch");
    let mut acc = [0.0f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            acc[l] += xa[l] * xb[l];
        }
    }
    for (l, (x, y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        acc[l] += x * y;
    }
    reduce_lanes_f64(&acc)
}

/// Deterministic 8-lane mixed dot product: `Σ a[i] * (b[i] as f64)`.
///
/// The functional simulator keeps conductance matrices in `f64` and
/// input levels in `f32`; each product widens the level before the
/// multiply, exactly as the pre-kernel scalar loop did.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot_f64_f32(a: &[f64], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot_f64_f32: length mismatch");
    let mut acc = [0.0f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            acc[l] += xa[l] * f64::from(xb[l]);
        }
    }
    for (l, (x, y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        acc[l] += x * f64::from(*y);
    }
    reduce_lanes_f64(&acc)
}

/// `y += alpha * x`, element-wise.
///
/// No reduction, so no ordering freedom: bit-identical to the naive
/// loop (the compiler vectorizes it freely because the elements are
/// independent).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy_f64(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy_f64: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = x + beta * y`, element-wise (the CG direction update).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn xpby_f64(x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby_f64: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + beta * *yi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use proptest::prelude::*;

    /// Straight-line reference of the *same* lane spec, written as the
    /// definition reads (one pass per lane) rather than how the kernel
    /// iterates. Bit equality against this pins the implementation to
    /// the documented order.
    fn spec_dot_f32(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        for l in 0..LANES {
            let mut i = l;
            while i < a.len() {
                acc[l] += a[i] * b[i];
                i += LANES;
            }
        }
        reduce_lanes_f32(&acc)
    }

    fn spec_dot_f64(a: &[f64], b: &[f64]) -> f64 {
        let mut acc = [0.0f64; LANES];
        for l in 0..LANES {
            let mut i = l;
            while i < a.len() {
                acc[l] += a[i] * b[i];
                i += LANES;
            }
        }
        reduce_lanes_f64(&acc)
    }

    #[test]
    fn dot_known_values() {
        let a: Vec<f32> = (0..19).map(|i| i as f32).collect();
        let b = vec![2.0f32; 19];
        assert_eq!(dot_f32(&a, &b), 2.0 * (0..19).sum::<i32>() as f32);
        assert_eq!(dot_f32(&[], &[]), 0.0);
        let a64: Vec<f64> = a.iter().map(|&x| f64::from(x)).collect();
        let b64 = vec![2.0f64; 19];
        assert_eq!(dot_f64(&a64, &b64), 342.0);
        assert_eq!(dot_f64_f32(&a64, &b), 342.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_checked() {
        dot_f32(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_and_xpby_match_naive() {
        let x: Vec<f64> = (0..37).map(|i| 0.1 * i as f64).collect();
        let mut y: Vec<f64> = (0..37).map(|i| -0.2 * i as f64).collect();
        let mut y2 = y.clone();
        axpy_f64(1.7, &x, &mut y);
        for (yi, xi) in y2.iter_mut().zip(&x) {
            *yi += 1.7 * xi;
        }
        assert_eq!(y, y2);
        xpby_f64(&x, -0.3, &mut y);
        for (yi, xi) in y2.iter_mut().zip(&x) {
            *yi = xi + -0.3 * *yi;
        }
        assert_eq!(y, y2);
    }

    proptest! {
        /// The kernel matches the straight-line spec bit for bit at
        /// every length, including all tail sizes.
        #[test]
        fn dot_f32_matches_spec_exactly(
            data in proptest::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 0..67),
        ) {
            let a: Vec<f32> = data.iter().map(|p| p.0).collect();
            let b: Vec<f32> = data.iter().map(|p| p.1).collect();
            prop_assert_eq!(dot_f32(&a, &b).to_bits(), spec_dot_f32(&a, &b).to_bits());
        }

        #[test]
        fn dot_f64_matches_spec_exactly(
            data in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 0..67),
        ) {
            let a: Vec<f64> = data.iter().map(|p| p.0).collect();
            let b: Vec<f64> = data.iter().map(|p| p.1).collect();
            prop_assert_eq!(dot_f64(&a, &b).to_bits(), spec_dot_f64(&a, &b).to_bits());
            let bf: Vec<f32> = b.iter().map(|&x| x as f32).collect();
            let b_widened: Vec<f64> = bf.iter().map(|&x| f64::from(x)).collect();
            prop_assert_eq!(
                dot_f64_f32(&a, &bf).to_bits(),
                spec_dot_f64(&a, &b_widened).to_bits()
            );
        }

        /// The lane-blocked result stays within a tight relative bound
        /// of the old sequential order (both are correct summations of
        /// the same products; they differ only in rounding).
        #[test]
        fn dot_f32_close_to_naive(
            data in proptest::collection::vec((-10.0f32..10.0, -10.0f32..10.0), 1..200),
        ) {
            let a: Vec<f32> = data.iter().map(|p| p.0).collect();
            let b: Vec<f32> = data.iter().map(|p| p.1).collect();
            let blocked = dot_f32(&a, &b);
            let sequential = naive::dot_f32(&a, &b);
            let magnitude: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
            let bound = f32::EPSILON * magnitude * a.len() as f32;
            prop_assert!(
                (blocked - sequential).abs() <= bound.max(1e-6),
                "blocked {blocked} vs sequential {sequential} (bound {bound})"
            );
        }
    }
}

//! Sequential reference implementations of the pre-kernel orderings.
//!
//! These are the loops the workspace ran before the lane-blocked
//! kernels landed: single-chain accumulation in ascending index order,
//! no blocking, no packing. They exist for two reasons:
//!
//! * the ulp-bounded regression tests pin each blocked kernel to its
//!   old ordering (`|blocked − naive| ≤ ε · Σ|terms| · n`), and
//! * the `geniex-bench` before/after benchmarks measure the blocked
//!   kernels against exactly what they replaced.
//!
//! They are not meant for production call sites.

/// Sequential f32 dot product: `acc += a[i] * b[i]` in ascending `i`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "naive::dot_f32: length mismatch");
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Sequential f64 dot product.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_f64(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "naive::dot_f64: length mismatch");
    let mut acc = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Sequential `C = A·B` in `ikj` order (the old `Tensor::matmul` loop,
/// minus its zero-skip branch).
///
/// # Panics
///
/// Panics if the buffer lengths are inconsistent with `k`/`n`.
pub fn gemm_nn(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    let m = match a.len().checked_div(k) {
        Some(q) => q,
        None => out.len() / n.max(1),
    };
    assert_eq!(a.len(), m * k, "naive::gemm_nn: lhs length");
    assert_eq!(b.len(), k * n, "naive::gemm_nn: rhs length");
    assert_eq!(out.len(), m * n, "naive::gemm_nn: out length");
    out.fill(0.0);
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            let brow = &b[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Sequential `C = A·Bᵀ`: one sequential dot per output element (the
/// old `Tensor::matmul_transpose` loop).
///
/// # Panics
///
/// Panics if the buffer lengths are inconsistent with `k`/`n`.
pub fn gemm_nt(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let m = a.len() / k;
    assert_eq!(a.len(), m * k, "naive::gemm_nt: lhs length");
    assert_eq!(b.len(), n * k, "naive::gemm_nt: rhs length");
    assert_eq!(out.len(), m * n, "naive::gemm_nt: out length");
    if n == 0 {
        return;
    }
    for (orow, arow) in out.chunks_exact_mut(n).zip(a.chunks_exact(k)) {
        for (o, brow) in orow.iter_mut().zip(b.chunks_exact(k)) {
            *o = dot_f32(arow, brow);
        }
    }
}

/// Sequential level-to-current GEMV (the old `funcsim::gemv_batch`
/// inner loop): `out[j] = (Σ_i mat[j][i] · x[i] as f64) · scale`.
///
/// # Panics
///
/// Panics if `mat.len() != out.len() * x.len()`.
pub fn gemv_levels_scaled(mat: &[f64], x: &[f32], scale: f64, out: &mut [f64]) {
    assert_eq!(
        mat.len(),
        out.len() * x.len(),
        "naive::gemv_levels_scaled: matrix length"
    );
    let k = x.len();
    if k == 0 {
        out.fill(0.0);
        return;
    }
    for (o, row) in out.iter_mut().zip(mat.chunks_exact(k)) {
        let mut acc = 0.0f64;
        for (m, lv) in row.iter().zip(x) {
            acc += m * f64::from(*lv);
        }
        *o = acc * scale;
    }
}

/// Sequential CSR matvec (the old `CsrMatrix::matvec_into` loop).
///
/// # Panics
///
/// Panics if the CSR structure is inconsistent with `y`.
pub fn spmv_csr(row_ptr: &[usize], col_idx: &[usize], values: &[f64], x: &[f64], y: &mut [f64]) {
    assert_eq!(col_idx.len(), values.len(), "naive::spmv_csr: structure");
    assert_eq!(row_ptr.len(), y.len() + 1, "naive::spmv_csr: row pointers");
    for (r, out) in y.iter_mut().enumerate() {
        let mut acc = 0.0f64;
        for idx in row_ptr[r]..row_ptr[r + 1] {
            acc += values[idx] * x[col_idx[idx]];
        }
        *out = acc;
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn naive_dot_is_sequential() {
        // Ordering check: ((1 + ε·ε⁻¹-ish) shapes are hard to pin
        // portably, so check a simple value instead plus length zero.
        assert_eq!(super::dot_f32(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(super::dot_f64(&[], &[]), 0.0);
    }

    #[test]
    fn naive_gemm_known() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [5.0f32, 6.0, 7.0, 8.0];
        let mut c = [0.0f32; 4];
        super::gemm_nn(&a, &b, &mut c, 2, 2);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
        // A·Bᵀ with B = [[5,6],[7,8]] → rows of B are dotted.
        super::gemm_nt(&a, &b, &mut c, 2, 2);
        assert_eq!(c, [17.0, 23.0, 39.0, 53.0]);
    }
}

//! Register-blocked GEMM micro-kernels and a blocked transpose.

use crate::{scratch, LANES};

/// Rows per register tile in [`gemm_nn`].
const MR: usize = 4;
/// Columns per packed RHS panel (equal to the lane count).
const NR: usize = LANES;
/// Square tile edge for [`transpose_f32`].
const TR: usize = 32;

/// `out = A · B` with `A` row-major `m×k`, `B` row-major `k×n`, `out`
/// row-major `m×n` (`m` is inferred from the slice lengths).
///
/// The kernel packs `B` into 8-column panels and updates 4×8 register
/// tiles. Every output element accumulates its `k` products in
/// ascending order from 0.0 — the identical chain to the textbook
/// `ikj` triple loop, so this kernel is **bit-identical to the naive
/// loop** (see [`naive::gemm_nn`](crate::naive::gemm_nn)); the blocking
/// only changes memory traffic, not arithmetic order. There is no
/// zero-skip branch: on dense data it mispredicts and blocks
/// vectorization of the inner column loop.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `k`/`n`.
pub fn gemm_nn(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    // k == 0 leaves m unrecoverable from `a`; the product is all
    // zeros for any m consistent with `out`.
    let m = match a.len().checked_div(k) {
        Some(q) => q,
        None => out.len() / n.max(1),
    };
    assert_eq!(a.len(), m * k, "gemm_nn: lhs length");
    assert_eq!(b.len(), k * n, "gemm_nn: rhs length");
    assert_eq!(out.len(), m * n, "gemm_nn: out length");
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    scratch::with_f32(k * NR, |panel| {
        let mut j = 0;
        while j + NR <= n {
            // Pack the 8-column panel so the micro-kernel streams it
            // contiguously instead of striding by n.
            for kk in 0..k {
                panel[kk * NR..(kk + 1) * NR].copy_from_slice(&b[kk * n + j..kk * n + j + NR]);
            }
            let mut i = 0;
            while i + MR <= m {
                tile_4x8(a, panel, out, i, j, k, n);
                i += MR;
            }
            while i < m {
                tile_1x8(a, panel, out, i, j, k, n);
                i += 1;
            }
            j += NR;
        }
        // Column tail (< 8 columns): plain ikj over the remainder, same
        // ascending-k chain per element.
        if j < n {
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[i * n + j..(i + 1) * n];
                for (kk, &av) in a_row.iter().enumerate() {
                    let b_row = &b[kk * n + j..(kk + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
            }
        }
    });
}

/// 4×8 register tile: `out[i..i+4][j..j+8] = Σ_k a[·][k] · panel[k][·]`.
#[inline]
fn tile_4x8(a: &[f32], panel: &[f32], out: &mut [f32], i: usize, j: usize, k: usize, n: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for kk in 0..k {
        let p = &panel[kk * NR..(kk + 1) * NR];
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let av = a[(i + r) * k + kk];
            for c in 0..NR {
                acc_row[c] += av * p[c];
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        out[(i + r) * n + j..(i + r) * n + j + NR].copy_from_slice(acc_row);
    }
}

/// 1×8 tile for the row tail of [`gemm_nn`].
#[inline]
fn tile_1x8(a: &[f32], panel: &[f32], out: &mut [f32], i: usize, j: usize, k: usize, n: usize) {
    let mut acc = [0.0f32; NR];
    let a_row = &a[i * k..(i + 1) * k];
    for (kk, &av) in a_row.iter().enumerate() {
        let p = &panel[kk * NR..(kk + 1) * NR];
        for c in 0..NR {
            acc[c] += av * p[c];
        }
    }
    out[i * n + j..i * n + j + NR].copy_from_slice(&acc);
}

/// `out = A · Bᵀ` with `A` row-major `m×k`, `B` row-major `n×k`, `out`
/// row-major `m×n` (`m` inferred from slice lengths).
///
/// This is the dot-product GEMM: each output element is a length-`k`
/// reduction, computed with the 8-lane split and fixed tree of
/// [`dot_f32`](crate::dot_f32) — the identical numeric spec, so
/// `gemm_nt(a, b)[i][j] == dot_f32(a_row_i, b_row_j)` bit for bit.
///
/// `dot_f32` assigns element `p` to lane `p % 8` (the remainder loop
/// continues the same pattern), so eight output columns are computed
/// at once against a packed `k×8` transpose of their `B` rows: the
/// inner loop broadcasts one `A` element across a whole panel row,
/// and the final lane tree becomes seven elementwise vector adds.
/// Nothing reduces horizontally per element — which is what makes
/// small-`k` shapes fast — yet every accumulation happens in the
/// exact `dot_f32` lane and order.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `k`/`n`.
pub fn gemm_nt(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    if k == 0 {
        // Product of m×0 and n×0ᵀ matrices: all zeros.
        out.fill(0.0);
        return;
    }
    let m = a.len() / k;
    assert_eq!(a.len(), m * k, "gemm_nt: lhs length");
    assert_eq!(b.len(), n * k, "gemm_nt: rhs length");
    assert_eq!(out.len(), m * n, "gemm_nt: out length");
    if n == 0 {
        return;
    }
    scratch::with_f32(k * NR, |panel| {
        let mut j = 0;
        while j + NR <= n {
            // Pack the transpose of rows j..j+8 of B: panel[p][c] =
            // b[(j+c)][p], so a panel row holds element p of all
            // eight columns contiguously.
            for (c, b_row) in b[j * k..(j + NR) * k].chunks_exact(k).enumerate() {
                for (p, &v) in b_row.iter().enumerate() {
                    panel[p * NR + c] = v;
                }
            }
            for (a_row, out_row) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
                nt_tile_1x8(a_row, panel, &mut out_row[j..j + NR]);
            }
            j += NR;
        }
        // Column tail (< 8 columns): plain dots, same spec.
        if j < n {
            for (a_row, out_row) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
                for (jj, o) in out_row.iter_mut().enumerate().skip(j) {
                    *o = crate::dot_f32(a_row, &b[jj * k..(jj + 1) * k]);
                }
            }
        }
    });
}

/// One `A` row against a packed 8-column panel: `acc[l][c]`
/// accumulates lane `l` of output column `c`; element `p` of the
/// reduction lands in lane `p % 8` exactly as in
/// [`dot_f32`](crate::dot_f32), and the closing tree combines lanes
/// elementwise across all eight columns at once.
#[inline]
fn nt_tile_1x8(a_row: &[f32], panel: &[f32], out: &mut [f32]) {
    let mut acc = [[0.0f32; NR]; LANES];
    let mut blocks_a = a_row.chunks_exact(LANES);
    let mut base = 0;
    for a_blk in blocks_a.by_ref() {
        for (l, &av) in a_blk.iter().enumerate() {
            let p: &[f32; NR] = panel[(base + l) * NR..(base + l + 1) * NR]
                .try_into()
                .expect("panel row width");
            for (acc_c, &pv) in acc[l].iter_mut().zip(p) {
                *acc_c += av * pv;
            }
        }
        base += LANES;
    }
    for (l, &av) in blocks_a.remainder().iter().enumerate() {
        let p: &[f32; NR] = panel[(base + l) * NR..(base + l + 1) * NR]
            .try_into()
            .expect("panel row width");
        for (acc_c, &pv) in acc[l].iter_mut().zip(p) {
            *acc_c += av * pv;
        }
    }
    let mut tree = [0.0f32; NR];
    for (c, t) in tree.iter_mut().enumerate() {
        *t = ((acc[0][c] + acc[1][c]) + (acc[2][c] + acc[3][c]))
            + ((acc[4][c] + acc[5][c]) + (acc[6][c] + acc[7][c]));
    }
    out.copy_from_slice(&tree);
}

/// Blocked 2-D transpose: `dst[j][i] = src[i][j]` for row-major `m×n`
/// `src` into row-major `n×m` `dst`, walked in 32×32 tiles so both
/// sides stay cache-resident. Pure data movement — trivially
/// deterministic.
///
/// # Panics
///
/// Panics if the slice lengths differ from `m * n`.
pub fn transpose_f32(src: &[f32], dst: &mut [f32], m: usize, n: usize) {
    assert_eq!(src.len(), m * n, "transpose_f32: src length");
    assert_eq!(dst.len(), m * n, "transpose_f32: dst length");
    let mut i0 = 0;
    while i0 < m {
        let i1 = (i0 + TR).min(m);
        let mut j0 = 0;
        while j0 < n {
            let j1 = (j0 + TR).min(n);
            for i in i0..i1 {
                for j in j0..j1 {
                    dst[j * m + i] = src[i * n + j];
                }
            }
            j0 = j1;
        }
        i0 = i1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use proptest::prelude::*;

    fn linear(len: usize, scale: f32) -> Vec<f32> {
        (0..len).map(|i| (i as f32 * 0.37 - 3.0) * scale).collect()
    }

    #[test]
    fn gemm_nn_known_2x2() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut out = [0.0f32; 4];
        gemm_nn(&a, &b, &mut out, 2, 2);
        assert_eq!(out, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemm_nn_overwrites_stale_output() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 0.0];
        let mut out = [7.0f32];
        gemm_nn(&a, &b, &mut out, 2, 1);
        assert_eq!(out, [0.0]);
    }

    #[test]
    fn degenerate_dimensions() {
        let mut out: [f32; 0] = [];
        gemm_nn(&[], &[], &mut out, 0, 5);
        gemm_nt(&[], &[], &mut out, 3, 0);
        let mut out1 = [1.0f32; 2];
        // k == 0: product of an m×0 and n×0ᵀ matrix is all zeros.
        gemm_nt(&[], &[], &mut out1, 0, 2);
        assert_eq!(out1, [0.0, 0.0]);
        let mut t: [f32; 0] = [];
        transpose_f32(&[], &mut t, 0, 4);
    }

    #[test]
    fn transpose_round_trips() {
        for (m, n) in [(1, 1), (3, 7), (33, 65), (64, 64)] {
            let src = linear(m * n, 1.0);
            let mut dst = vec![0.0f32; m * n];
            transpose_f32(&src, &mut dst, m, n);
            let mut back = vec![0.0f32; m * n];
            transpose_f32(&dst, &mut back, n, m);
            assert_eq!(src, back, "{m}x{n}");
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(dst[j * m + i], src[i * n + j]);
                }
            }
        }
    }

    proptest! {
        /// The blocked NN kernel is bit-identical to the naive ikj
        /// triple loop at every shape, including all tile tails.
        #[test]
        fn gemm_nn_bit_identical_to_naive(
            m in 1usize..12, k in 1usize..12, n in 1usize..20, seed in 0u32..4,
        ) {
            let a = linear(m * k, 1.0 + seed as f32 * 0.1);
            let b = linear(k * n, 0.7 - seed as f32 * 0.05);
            let mut blocked = vec![0.0f32; m * n];
            gemm_nn(&a, &b, &mut blocked, k, n);
            let mut reference = vec![0.0f32; m * n];
            naive::gemm_nn(&a, &b, &mut reference, k, n);
            for (x, y) in blocked.iter().zip(&reference) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        /// Every NT output element equals a plain `dot_f32` of its row
        /// pair — the 4-column blocking must not change the lane spec.
        #[test]
        fn gemm_nt_bit_identical_to_dot(
            m in 1usize..10, k in 1usize..40, n in 1usize..10,
        ) {
            let a = linear(m * k, 0.9);
            let b = linear(n * k, -1.1);
            let mut out = vec![0.0f32; m * n];
            gemm_nt(&a, &b, &mut out, k, n);
            for i in 0..m {
                for j in 0..n {
                    let expect = crate::dot_f32(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
                    prop_assert_eq!(out[i * n + j].to_bits(), expect.to_bits());
                }
            }
        }

        /// NT stays ulp-close to the old sequential dot ordering.
        #[test]
        fn gemm_nt_close_to_naive(
            m in 1usize..6, k in 1usize..50, n in 1usize..6,
        ) {
            let a = linear(m * k, 0.13);
            let b = linear(n * k, 0.31);
            let mut blocked = vec![0.0f32; m * n];
            gemm_nt(&a, &b, &mut blocked, k, n);
            let mut reference = vec![0.0f32; m * n];
            naive::gemm_nt(&a, &b, &mut reference, k, n);
            for (i, (x, y)) in blocked.iter().zip(&reference).enumerate() {
                let row = i / n;
                let magnitude: f32 = a[row * k..(row + 1) * k].iter().map(|v| v.abs()).sum();
                let bound = (f32::EPSILON * magnitude * magnitude * k as f32).max(1e-5);
                prop_assert!((x - y).abs() <= bound, "{x} vs {y} at {i}");
            }
        }
    }
}

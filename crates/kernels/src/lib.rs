//! Deterministic, SIMD-friendly compute kernels for the GENIEx hot paths.
//!
//! Every inner loop in this workspace that matters for throughput — the
//! surrogate's two GEMVs per MVM, the functional simulator's batched
//! level-to-current GEMVs, the training GEMMs behind `nn::Tensor`, and
//! the CSR spmv + dot products inside the conjugate-gradient solver —
//! funnels through this crate. The kernels are built around one idea:
//!
//! **Fix the floating-point accumulation order in the kernel spec, and
//! pick an order the compiler can vectorize.**
//!
//! A naive dot product accumulates sequentially (`acc += a[i] * b[i]`),
//! which is a single serial dependency chain the compiler must not
//! reorder (FP addition is not associative), so it cannot vectorize it.
//! The kernels here instead split every reduction into [`LANES`] (= 8)
//! independent accumulator lanes with a fixed final reduction tree:
//!
//! * lane `l` accumulates the products at indices `i ≡ l (mod 8)`, in
//!   ascending `i`;
//! * the lanes reduce as `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
//!
//! Each lane is its own serial chain, so the eight lanes advance in
//! lock-step as one vector multiply-add per block of 8 — exactly the
//! shape LLVM's autovectorizer turns into SIMD on any target — while
//! the result is a pure function of the input values: bit-identical
//! regardless of thread count, call site, batch position, or target
//! CPU (IEEE-754 arithmetic is deterministic; Rust never contracts
//! `mul`+`add` into FMA behind your back).
//!
//! The matrix kernels extend the same discipline:
//!
//! * [`gemm_nn`] (`C = A·B`) uses a 4×8 register-blocked micro-kernel
//!   over RHS panels packed 8 columns wide. Accumulation per output
//!   element runs in ascending-`k` order — the same chain as the naive
//!   `ikj` triple loop, so `gemm_nn` is bit-identical to it.
//! * [`gemm_nt`] (`C = A·Bᵀ`) is a dot-product kernel; it evaluates 4
//!   output columns per pass with the 8-lane split above.
//! * [`spmv_csr`] picks the order per CSR row from the row's length:
//!   sequential for rows with ≤ 8 entries (the crossbar-Jacobian norm,
//!   where lane padding would only add flops), the lane split by
//!   position within the row beyond that.
//! * [`SpmvPlan`] moves that decision to build time: it inspects the
//!   sparsity structure once and re-packs short-row matrices into
//!   SELL-8 slices (8 independent accumulator chains, no per-row
//!   branching), keeping the naive order for tiny matrices and the
//!   per-row dispatch for ragged ones. Iterative solvers build the
//!   plan once per pattern and amortize it across every product.
//!
//! Element-wise kernels ([`axpy_f64`], [`xpby_f64`]) have no reduction
//! and therefore no ordering freedom; they are provided so solvers have
//! a single home for their vector ops.
//!
//! The [`naive`] module keeps straight-line reference implementations
//! of the *old* sequential order for ulp-bounded regression tests and
//! for the before/after benchmarks in `geniex-bench`.
//!
//! # Example
//!
//! ```
//! let a = [1.0f32; 19];
//! let b = [2.0f32; 19];
//! // 8-lane deterministic dot: same bits from any call site.
//! assert_eq!(kernels::dot_f32(&a, &b), 38.0);
//! ```

#![forbid(unsafe_code)]

mod dot;
mod gemm;
mod gemv;
pub mod naive;
pub mod scratch;
mod spmv;

pub use dot::{axpy_f64, dot_f32, dot_f64, dot_f64_f32, xpby_f64};
pub use gemm::{gemm_nn, gemm_nt, transpose_f32};
pub use gemv::{gemv_bias_relu_f32, gemv_into_f32, gemv_levels_scaled, gemv_levels_scaled_batch};
pub use spmv::{spmv_csr, SpmvPlan, SpmvStrategy};

/// Number of independent accumulator lanes in every reduction kernel.
///
/// Eight f32 lanes fill one AVX2 register (or two SSE2 registers);
/// eight f64 lanes fill two AVX2 registers. The value is part of the
/// numeric contract: changing it changes results.
pub const LANES: usize = 8;

/// Reduces eight f32 lanes with the fixed tree
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
#[inline]
pub fn reduce_lanes_f32(acc: &[f32; LANES]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Reduces eight f64 lanes with the fixed tree
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
#[inline]
pub fn reduce_lanes_f64(acc: &[f64; LANES]) -> f64 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

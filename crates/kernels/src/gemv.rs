//! Deterministic GEMV kernels for the surrogate and simulator hot paths.

use crate::dot_f32;

/// `out[j] = init[j] + Σ_k w[j][k] · x[k]` with `w` row-major
/// `out.len() × x.len()`.
///
/// The reduction uses the [`dot_f32`] lane spec; the `init` term (a
/// bias, or the precomputed conductance contribution in the
/// fast-forward surrogate) is added to the finished tree sum, which is
/// bitwise equal to starting the accumulation from it (IEEE addition
/// is commutative).
///
/// # Panics
///
/// Panics if `w.len() != out.len() * x.len()` or
/// `init.len() != out.len()`.
#[inline]
pub fn gemv_into_f32(w: &[f32], x: &[f32], init: &[f32], out: &mut [f32]) {
    assert_eq!(w.len(), out.len() * x.len(), "gemv_into_f32: matrix length");
    assert_eq!(init.len(), out.len(), "gemv_into_f32: init length");
    let k = x.len();
    if k == 0 {
        for (o, b) in out.iter_mut().zip(init) {
            *o = b + 0.0;
        }
        return;
    }
    for ((o, row), b) in out.iter_mut().zip(w.chunks_exact(k)).zip(init) {
        *o = b + dot_f32(row, x);
    }
}

/// [`gemv_into_f32`] followed by an in-place ReLU — the surrogate's
/// hidden-layer update `h = max(0, W·x + init)` fused into one pass.
///
/// # Panics
///
/// Panics on the same length mismatches as [`gemv_into_f32`].
#[inline]
pub fn gemv_bias_relu_f32(w: &[f32], x: &[f32], init: &[f32], out: &mut [f32]) {
    assert_eq!(
        w.len(),
        out.len() * x.len(),
        "gemv_bias_relu_f32: matrix length"
    );
    assert_eq!(init.len(), out.len(), "gemv_bias_relu_f32: init length");
    let k = x.len();
    if k == 0 {
        for (o, b) in out.iter_mut().zip(init) {
            *o = (b + 0.0).max(0.0);
        }
        return;
    }
    for ((o, row), b) in out.iter_mut().zip(w.chunks_exact(k)).zip(init) {
        *o = (b + dot_f32(row, x)).max(0.0);
    }
}

/// `out[j] = (Σ_i mat[j][i] · x[i] as f64) · scale` with `mat`
/// row-major `out.len() × x.len()` — the level-to-current GEMV shared
/// by the functional simulator's linear tile backends.
///
/// Uses the [`dot_f64_f32`](crate::dot_f64_f32) lane spec; the scale (supply voltage)
/// multiplies the finished sum, as the pre-kernel loop did. The level
/// vector is widened to `f64` once up front (widening is exact, so
/// this is bit-identical to converting inside the inner loop) and the
/// rows then run through the pure-f64 dot kernel.
///
/// # Panics
///
/// Panics if `mat.len() != out.len() * x.len()`.
#[inline]
pub fn gemv_levels_scaled(mat: &[f64], x: &[f32], scale: f64, out: &mut [f64]) {
    assert_eq!(
        mat.len(),
        out.len() * x.len(),
        "gemv_levels_scaled: matrix length"
    );
    let k = x.len();
    if k == 0 {
        out.fill(0.0);
        return;
    }
    crate::scratch::with_f64(k, |xw| {
        for (w, &v) in xw.iter_mut().zip(x) {
            *w = f64::from(v);
        }
        for (o, row) in out.iter_mut().zip(mat.chunks_exact(k)) {
            *o = crate::dot_f64(row, xw) * scale;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemv_matches_dot_plus_init() {
        let w: Vec<f32> = (0..3 * 13).map(|i| (i as f32).sin()).collect();
        let x: Vec<f32> = (0..13).map(|i| (i as f32).cos()).collect();
        let init = [0.5f32, -0.25, 4.0];
        let mut out = [0.0f32; 3];
        gemv_into_f32(&w, &x, &init, &mut out);
        for j in 0..3 {
            let expect = init[j] + dot_f32(&w[j * 13..(j + 1) * 13], &x);
            assert_eq!(out[j].to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn relu_variant_clamps() {
        let w = [1.0f32, -1.0];
        let x = [0.0f32];
        let init = [2.0f32, -3.0];
        let mut out = [0.0f32; 2];
        gemv_bias_relu_f32(&w, &x, &init, &mut out);
        assert_eq!(out, [2.0, 0.0]);
    }

    #[test]
    fn levels_gemv_scales_after_sum() {
        let mat = [1.0f64, 2.0, 3.0, 4.0];
        let x = [0.5f32, 0.25];
        let mut out = [0.0f64; 2];
        gemv_levels_scaled(&mat, &x, 10.0, &mut out);
        assert_eq!(out, [10.0, 25.0]);
    }

    #[test]
    fn empty_input_dimension() {
        let mut out = [1.0f32; 2];
        gemv_into_f32(&[], &[], &[3.0, 4.0], &mut out);
        assert_eq!(out, [3.0, 4.0]);
        let mut out64 = [1.0f64; 2];
        gemv_levels_scaled(&[], &[], 5.0, &mut out64);
        assert_eq!(out64, [0.0, 0.0]);
    }
}

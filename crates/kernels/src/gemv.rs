//! Deterministic GEMV kernels for the surrogate and simulator hot paths.

use crate::dot_f32;

/// `out[j] = init[j] + Σ_k w[j][k] · x[k]` with `w` row-major
/// `out.len() × x.len()`.
///
/// The reduction uses the [`dot_f32`] lane spec; the `init` term (a
/// bias, or the precomputed conductance contribution in the
/// fast-forward surrogate) is added to the finished tree sum, which is
/// bitwise equal to starting the accumulation from it (IEEE addition
/// is commutative).
///
/// # Panics
///
/// Panics if `w.len() != out.len() * x.len()` or
/// `init.len() != out.len()`.
#[inline]
pub fn gemv_into_f32(w: &[f32], x: &[f32], init: &[f32], out: &mut [f32]) {
    assert_eq!(w.len(), out.len() * x.len(), "gemv_into_f32: matrix length");
    assert_eq!(init.len(), out.len(), "gemv_into_f32: init length");
    let k = x.len();
    if k == 0 {
        for (o, b) in out.iter_mut().zip(init) {
            *o = b + 0.0;
        }
        return;
    }
    for ((o, row), b) in out.iter_mut().zip(w.chunks_exact(k)).zip(init) {
        *o = b + dot_f32(row, x);
    }
}

/// [`gemv_into_f32`] followed by an in-place ReLU — the surrogate's
/// hidden-layer update `h = max(0, W·x + init)` fused into one pass.
///
/// # Panics
///
/// Panics on the same length mismatches as [`gemv_into_f32`].
#[inline]
pub fn gemv_bias_relu_f32(w: &[f32], x: &[f32], init: &[f32], out: &mut [f32]) {
    assert_eq!(
        w.len(),
        out.len() * x.len(),
        "gemv_bias_relu_f32: matrix length"
    );
    assert_eq!(init.len(), out.len(), "gemv_bias_relu_f32: init length");
    let k = x.len();
    if k == 0 {
        for (o, b) in out.iter_mut().zip(init) {
            *o = (b + 0.0).max(0.0);
        }
        return;
    }
    for ((o, row), b) in out.iter_mut().zip(w.chunks_exact(k)).zip(init) {
        *o = (b + dot_f32(row, x)).max(0.0);
    }
}

/// `out[j] = (Σ_i mat[j][i] · x[i] as f64) · scale` with `mat`
/// row-major `out.len() × x.len()` — the level-to-current GEMV shared
/// by the functional simulator's linear tile backends.
///
/// Uses the [`dot_f64_f32`](crate::dot_f64_f32) lane spec; the scale (supply voltage)
/// multiplies the finished sum, as the pre-kernel loop did. The level
/// vector is widened to `f64` once up front (widening is exact, so
/// this is bit-identical to converting inside the inner loop) and the
/// rows then run through the pure-f64 dot kernel.
///
/// # Panics
///
/// Panics if `mat.len() != out.len() * x.len()`.
#[inline]
pub fn gemv_levels_scaled(mat: &[f64], x: &[f32], scale: f64, out: &mut [f64]) {
    assert_eq!(
        mat.len(),
        out.len() * x.len(),
        "gemv_levels_scaled: matrix length"
    );
    let k = x.len();
    if k == 0 {
        out.fill(0.0);
        return;
    }
    crate::scratch::with_f64(k, |xw| {
        for (w, &v) in xw.iter_mut().zip(x) {
            *w = f64::from(v);
        }
        for (o, row) in out.iter_mut().zip(mat.chunks_exact(k)) {
            *o = crate::dot_f64(row, xw) * scale;
        }
    });
}

/// Batched [`gemv_levels_scaled`]: `x` holds `n` consecutive level
/// vectors (row-major `n × k`) and `out` the matching `n × rows`
/// results, each bit-identical to the per-vector call.
///
/// Like [`gemm_nt`](crate::gemm_nt), eight matrix rows are packed into
/// a `k×8` transposed panel and every level vector streams through it
/// with broadcast multiplies; `dot_f64` assigns element `p` to lane
/// `p % 8`, so the lane accumulators and closing tree reproduce the
/// scalar kernel's reduction exactly (`f64` multiplication commutes,
/// so `row·x` and `x·row` are the same bits). The panel is packed once
/// per row block and reused across the whole batch.
///
/// # Panics
///
/// Panics if `x.len() != n * k` or `mat.len() * n != out.len() * k`.
pub fn gemv_levels_scaled_batch(mat: &[f64], x: &[f32], scale: f64, out: &mut [f64], n: usize) {
    if n <= 1 {
        if n == 1 {
            gemv_levels_scaled(mat, x, scale, out);
        }
        return;
    }
    assert_eq!(x.len() % n, 0, "gemv_levels_scaled_batch: levels length");
    assert_eq!(out.len() % n, 0, "gemv_levels_scaled_batch: out length");
    let k = x.len() / n;
    let rows = out.len() / n;
    assert_eq!(
        mat.len(),
        rows * k,
        "gemv_levels_scaled_batch: matrix length"
    );
    if k == 0 {
        out.fill(0.0);
        return;
    }
    const NR: usize = crate::LANES;
    crate::scratch::with_f64(n * k, |xw| {
        for (w, &v) in xw.iter_mut().zip(x) {
            *w = f64::from(v);
        }
        crate::scratch::with_f64(k * NR, |panel| {
            let mut j = 0;
            while j + NR <= rows {
                for (c, row) in mat[j * k..(j + NR) * k].chunks_exact(k).enumerate() {
                    for (p, &v) in row.iter().enumerate() {
                        panel[p * NR + c] = v;
                    }
                }
                for (xb, ob) in xw.chunks_exact(k).zip(out.chunks_exact_mut(rows)) {
                    nt_tile_1x8_f64(xb, panel, scale, &mut ob[j..j + NR]);
                }
                j += NR;
            }
            if j < rows {
                for (xb, ob) in xw.chunks_exact(k).zip(out.chunks_exact_mut(rows)) {
                    for (jj, o) in ob.iter_mut().enumerate().skip(j) {
                        *o = crate::dot_f64(&mat[jj * k..(jj + 1) * k], xb) * scale;
                    }
                }
            }
        });
    });
}

/// One widened level vector against a packed 8-row panel — the `f64`
/// twin of the `gemm_nt` tile: lane `p % 8` accumulation, elementwise
/// lane tree, then the scale multiply on each finished sum.
#[inline]
fn nt_tile_1x8_f64(xb: &[f64], panel: &[f64], scale: f64, out: &mut [f64]) {
    const NR: usize = crate::LANES;
    const LANES: usize = crate::LANES;
    let mut acc = [[0.0f64; NR]; LANES];
    let mut blocks = xb.chunks_exact(LANES);
    let mut base = 0;
    for blk in blocks.by_ref() {
        for (l, &av) in blk.iter().enumerate() {
            let p: &[f64; NR] = panel[(base + l) * NR..(base + l + 1) * NR]
                .try_into()
                .expect("panel row width");
            for (acc_c, &pv) in acc[l].iter_mut().zip(p) {
                *acc_c += av * pv;
            }
        }
        base += LANES;
    }
    for (l, &av) in blocks.remainder().iter().enumerate() {
        let p: &[f64; NR] = panel[(base + l) * NR..(base + l + 1) * NR]
            .try_into()
            .expect("panel row width");
        for (acc_c, &pv) in acc[l].iter_mut().zip(p) {
            *acc_c += av * pv;
        }
    }
    for (c, o) in out.iter_mut().enumerate() {
        *o = (((acc[0][c] + acc[1][c]) + (acc[2][c] + acc[3][c]))
            + ((acc[4][c] + acc[5][c]) + (acc[6][c] + acc[7][c])))
            * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemv_matches_dot_plus_init() {
        let w: Vec<f32> = (0..3 * 13).map(|i| (i as f32).sin()).collect();
        let x: Vec<f32> = (0..13).map(|i| (i as f32).cos()).collect();
        let init = [0.5f32, -0.25, 4.0];
        let mut out = [0.0f32; 3];
        gemv_into_f32(&w, &x, &init, &mut out);
        for j in 0..3 {
            let expect = init[j] + dot_f32(&w[j * 13..(j + 1) * 13], &x);
            assert_eq!(out[j].to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn relu_variant_clamps() {
        let w = [1.0f32, -1.0];
        let x = [0.0f32];
        let init = [2.0f32, -3.0];
        let mut out = [0.0f32; 2];
        gemv_bias_relu_f32(&w, &x, &init, &mut out);
        assert_eq!(out, [2.0, 0.0]);
    }

    #[test]
    fn levels_gemv_scales_after_sum() {
        let mat = [1.0f64, 2.0, 3.0, 4.0];
        let x = [0.5f32, 0.25];
        let mut out = [0.0f64; 2];
        gemv_levels_scaled(&mat, &x, 10.0, &mut out);
        assert_eq!(out, [10.0, 25.0]);
    }

    #[test]
    fn empty_input_dimension() {
        let mut out = [1.0f32; 2];
        gemv_into_f32(&[], &[], &[3.0, 4.0], &mut out);
        assert_eq!(out, [3.0, 4.0]);
        let mut out64 = [1.0f64; 2];
        gemv_levels_scaled(&[], &[], 5.0, &mut out64);
        assert_eq!(out64, [0.0, 0.0]);
    }

    /// The batched levels GEMV must match the per-vector kernel bit
    /// for bit at every shape — panel blocks, row tails, and lane
    /// remainders included.
    #[test]
    fn batched_levels_gemv_bit_identical_to_scalar() {
        for (rows, k, n) in [(8, 16, 4), (16, 16, 32), (7, 13, 5), (9, 8, 2), (1, 1, 3)] {
            let mat: Vec<f64> = (0..rows * k)
                .map(|i| ((i * 37) % 101) as f64 * 0.013)
                .collect();
            let x: Vec<f32> = (0..n * k).map(|i| ((i * 17) % 29) as f32 / 28.0).collect();
            let scale = 0.25;
            let mut batched = vec![0.0f64; n * rows];
            gemv_levels_scaled_batch(&mat, &x, scale, &mut batched, n);
            for b in 0..n {
                let mut single = vec![0.0f64; rows];
                gemv_levels_scaled(&mat, &x[b * k..(b + 1) * k], scale, &mut single);
                for (j, (got, want)) in batched[b * rows..(b + 1) * rows]
                    .iter()
                    .zip(&single)
                    .enumerate()
                {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "rows={rows} k={k} n={n} b={b} j={j}"
                    );
                }
            }
        }
    }
}

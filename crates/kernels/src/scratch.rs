//! Thread-local scratch buffers for kernel workspaces.
//!
//! The packed-panel GEMM and the surrogate / MLP forward passes need
//! short-lived f32/f64 workspaces on every call. Allocating them per
//! call dominated the small-crossbar profiles (a 64×64 MVM is only
//! ~8k flops), so this module keeps per-thread free lists and hands
//! buffers out by closure. Checked-out buffers have *unspecified
//! contents* — callers must fully overwrite them.
//!
//! Telemetry: `kernels.scratch.alloc` counts checkouts that had to
//! grow a buffer (or create one); `kernels.scratch.reuse` counts
//! checkouts served entirely from the pool. A healthy steady-state
//! workload shows `reuse` ≫ `alloc` in its run manifest.

use std::cell::RefCell;
use std::sync::{Arc, OnceLock};
use telemetry::Counter;

fn alloc_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| telemetry::counter("kernels.scratch.alloc"))
}

fn reuse_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| telemetry::counter("kernels.scratch.reuse"))
}

thread_local! {
    static POOL_F32: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
    static POOL_F64: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

fn checkout<T: Copy + Default>(pool: &RefCell<Vec<Vec<T>>>, len: usize) -> Vec<T> {
    let mut buf = pool.borrow_mut().pop().unwrap_or_default();
    if buf.capacity() < len {
        alloc_counter().inc();
    } else {
        reuse_counter().inc();
    }
    // Contents are unspecified by contract; resize only adjusts length.
    buf.resize(len, T::default());
    buf
}

/// Runs `f` with a scratch `&mut [f32]` of exactly `len` elements,
/// recycled across calls on the same thread. Contents on entry are
/// unspecified. Re-entrant: nested calls check out distinct buffers.
#[inline]
pub fn with_f32<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = POOL_F32.with(|p| checkout(p, len));
    let out = f(&mut buf);
    POOL_F32.with(|p| p.borrow_mut().push(buf));
    out
}

/// Runs `f` with a scratch `&mut [f64]` of exactly `len` elements,
/// recycled across calls on the same thread. Contents on entry are
/// unspecified. Re-entrant: nested calls check out distinct buffers.
#[inline]
pub fn with_f64<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    let mut buf = POOL_F64.with(|p| checkout(p, len));
    let out = f(&mut buf);
    POOL_F64.with(|p| p.borrow_mut().push(buf));
    out
}

/// Runs `f` with two independent scratch `&mut [f32]` buffers — the
/// ping-pong pair used by multi-layer forward passes.
#[inline]
pub fn with_f32_pair<R>(
    len_a: usize,
    len_b: usize,
    f: impl FnOnce(&mut [f32], &mut [f32]) -> R,
) -> R {
    with_f32(len_a, |a| with_f32(len_b, |b| f(a, b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_have_requested_length() {
        with_f32(13, |b| assert_eq!(b.len(), 13));
        with_f64(7, |b| assert_eq!(b.len(), 7));
        with_f32_pair(3, 5, |a, b| {
            assert_eq!((a.len(), b.len()), (3, 5));
        });
    }

    #[test]
    fn nested_checkouts_are_distinct() {
        with_f32(4, |a| {
            a.fill(1.0);
            with_f32(4, |b| {
                b.fill(2.0);
                assert_eq!(a, [1.0; 4].as_slice());
            });
            assert_eq!(a, [1.0; 4].as_slice());
        });
    }

    #[test]
    fn second_checkout_reuses_capacity() {
        // Warm the pool with a large buffer, then take a smaller one:
        // the second checkout must come from the free list.
        telemetry::set_enabled(true);
        with_f32(1024, |_| {});
        let reuse = telemetry::counter("kernels.scratch.reuse");
        let before = reuse.get();
        with_f32(64, |_| {});
        assert!(reuse.get() > before, "expected a pool hit");
    }
}

//! Lane-blocked CSR sparse matrix–vector product.

use crate::{reduce_lanes_f64, LANES};

/// CSR matvec `y = A·x` over raw CSR buffers.
///
/// The accumulation order within a row is a fixed function of the
/// row's length, so the result is independent of thread count and call
/// site:
///
/// - **Short rows** (`nnz ≤ 8`, the norm for crossbar circuit
///   Jacobians at ~5 entries per row): products accumulate
///   sequentially in ascending position — identical to the pre-kernel
///   loop. Padding a 5-entry row out to 8 lanes and running the
///   reduction tree would more than double the row's flops for zero
///   SIMD benefit (the `x` gather defeats vectorization anyway).
/// - **Long rows** (`nnz > 8`): the 8-lane split applied *by position
///   within the row* (lane `l` takes the row's entries at positions
///   `≡ l (mod 8)`, ascending; the tail continues by position) and the
///   fixed tree of [`reduce_lanes_f64`], giving the long reduction the
///   same instruction-level parallelism as the dense dot kernels.
///
/// # Panics
///
/// Panics if the CSR structure is inconsistent (`row_ptr` not
/// monotonically covering `col_idx`/`values`, `y` length not matching
/// the row count, or a column index out of `x`'s bounds — the latter
/// panics via slice indexing).
#[inline]
pub fn spmv_csr(row_ptr: &[usize], col_idx: &[usize], values: &[f64], x: &[f64], y: &mut [f64]) {
    assert_eq!(col_idx.len(), values.len(), "spmv_csr: structure length");
    assert_eq!(
        row_ptr.len(),
        y.len() + 1,
        "spmv_csr: row pointer length must be rows + 1"
    );
    assert_eq!(
        *row_ptr.last().expect("row_ptr is non-empty"),
        values.len(),
        "spmv_csr: row pointers must cover all entries"
    );
    for (r, out) in y.iter_mut().enumerate() {
        let lo = row_ptr[r];
        let hi = row_ptr[r + 1];
        if hi - lo <= LANES {
            let mut acc = 0.0f64;
            for idx in lo..hi {
                acc += values[idx] * x[col_idx[idx]];
            }
            *out = acc;
        } else {
            let vals = &values[lo..hi];
            let cols = &col_idx[lo..hi];
            let mut acc = [0.0f64; LANES];
            let mut cv = vals.chunks_exact(LANES);
            let mut cc = cols.chunks_exact(LANES);
            for (v8, c8) in cv.by_ref().zip(cc.by_ref()) {
                for l in 0..LANES {
                    acc[l] += v8[l] * x[c8[l]];
                }
            }
            for (l, (v, c)) in cv.remainder().iter().zip(cc.remainder()).enumerate() {
                acc[l] += v * x[*c];
            }
            *out = reduce_lanes_f64(&acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use proptest::prelude::*;

    #[test]
    fn tridiagonal_known() {
        // [[2, -1, 0], [-1, 2, -1], [0, -1, 2]] · [1, 2, 3]
        let row_ptr = [0usize, 2, 5, 7];
        let col_idx = [0usize, 1, 0, 1, 2, 1, 2];
        let values = [2.0, -1.0, -1.0, 2.0, -1.0, -1.0, 2.0];
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0f64; 3];
        spmv_csr(&row_ptr, &col_idx, &values, &x, &mut y);
        assert_eq!(y, [0.0, 0.0, 4.0]);
    }

    #[test]
    fn empty_matrix() {
        let mut y: [f64; 0] = [];
        spmv_csr(&[0], &[], &[], &[], &mut y);
    }

    #[test]
    #[should_panic(expected = "row pointer length")]
    fn bad_row_ptr_rejected() {
        let mut y = [0.0f64; 2];
        spmv_csr(&[0, 1], &[0], &[1.0], &[1.0], &mut y);
    }

    proptest! {
        /// Rows with at most 8 entries use the sequential order and are
        /// bit-identical to the pre-kernel loop.
        #[test]
        fn short_rows_bit_identical_to_naive(
            rows in proptest::collection::vec(0usize..=8, 1..12),
            seed in 0u64..8,
        ) {
            let n_cols = 8usize;
            let mut row_ptr = vec![0usize];
            let mut col_idx = Vec::new();
            let mut values = Vec::new();
            let mut state = seed.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(7);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for &nnz in &rows {
                for _ in 0..nnz {
                    col_idx.push((next() % n_cols as u64) as usize);
                    values.push((next() % 1000) as f64 / 100.0 - 5.0);
                }
                row_ptr.push(col_idx.len());
            }
            let x: Vec<f64> = (0..n_cols).map(|i| i as f64 * 0.7 - 2.0).collect();
            let mut blocked = vec![0.0f64; rows.len()];
            spmv_csr(&row_ptr, &col_idx, &values, &x, &mut blocked);
            let mut reference = vec![0.0f64; rows.len()];
            naive::spmv_csr(&row_ptr, &col_idx, &values, &x, &mut reference);
            for (a, b) in blocked.iter().zip(&reference) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        /// Lane-blocked rows stay within a tight bound of the old
        /// sequential row accumulation.
        #[test]
        fn spmv_close_to_naive(
            rows in proptest::collection::vec(0usize..24, 1..12),
            seed in 0u64..16,
        ) {
            // Build a random CSR: `rows[r]` entries in row r, columns
            // cycling over an 8-wide x.
            let n_cols = 8usize;
            let mut row_ptr = vec![0usize];
            let mut col_idx = Vec::new();
            let mut values = Vec::new();
            let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for &nnz in &rows {
                for _ in 0..nnz {
                    col_idx.push((next() % n_cols as u64) as usize);
                    values.push((next() % 1000) as f64 / 100.0 - 5.0);
                }
                row_ptr.push(col_idx.len());
            }
            let x: Vec<f64> = (0..n_cols).map(|i| i as f64 * 0.3 - 1.0).collect();
            let mut blocked = vec![0.0f64; rows.len()];
            spmv_csr(&row_ptr, &col_idx, &values, &x, &mut blocked);
            let mut reference = vec![0.0f64; rows.len()];
            naive::spmv_csr(&row_ptr, &col_idx, &values, &x, &mut reference);
            for (r, (a, b)) in blocked.iter().zip(&reference).enumerate() {
                let lo = row_ptr[r];
                let hi = row_ptr[r + 1];
                let magnitude: f64 = (lo..hi).map(|k| (values[k] * x[col_idx[k]]).abs()).sum();
                let bound = (f64::EPSILON * magnitude * (hi - lo).max(1) as f64).max(1e-12);
                prop_assert!((a - b).abs() <= bound, "row {r}: {a} vs {b}");
            }
        }
    }
}

//! Lane-blocked CSR sparse matrix–vector product.

use crate::{reduce_lanes_f64, LANES};

/// CSR matvec `y = A·x` over raw CSR buffers.
///
/// The accumulation order within a row is a fixed function of the
/// row's length, so the result is independent of thread count and call
/// site:
///
/// - **Short rows** (`nnz ≤ 8`, the norm for crossbar circuit
///   Jacobians at ~5 entries per row): products accumulate
///   sequentially in ascending position — identical to the pre-kernel
///   loop. Padding a 5-entry row out to 8 lanes and running the
///   reduction tree would more than double the row's flops for zero
///   SIMD benefit (the `x` gather defeats vectorization anyway).
/// - **Long rows** (`nnz > 8`): the 8-lane split applied *by position
///   within the row* (lane `l` takes the row's entries at positions
///   `≡ l (mod 8)`, ascending; the tail continues by position) and the
///   fixed tree of [`reduce_lanes_f64`], giving the long reduction the
///   same instruction-level parallelism as the dense dot kernels.
///
/// # Panics
///
/// Panics if the CSR structure is inconsistent (`row_ptr` not
/// monotonically covering `col_idx`/`values`, `y` length not matching
/// the row count, or a column index out of `x`'s bounds — the latter
/// panics via slice indexing).
#[inline]
pub fn spmv_csr(row_ptr: &[usize], col_idx: &[usize], values: &[f64], x: &[f64], y: &mut [f64]) {
    assert_eq!(col_idx.len(), values.len(), "spmv_csr: structure length");
    assert_eq!(
        row_ptr.len(),
        y.len() + 1,
        "spmv_csr: row pointer length must be rows + 1"
    );
    assert_eq!(
        *row_ptr.last().expect("row_ptr is non-empty"),
        values.len(),
        "spmv_csr: row pointers must cover all entries"
    );
    for (r, out) in y.iter_mut().enumerate() {
        let lo = row_ptr[r];
        let hi = row_ptr[r + 1];
        if hi - lo <= LANES {
            let mut acc = 0.0f64;
            for idx in lo..hi {
                acc += values[idx] * x[col_idx[idx]];
            }
            *out = acc;
        } else {
            let vals = &values[lo..hi];
            let cols = &col_idx[lo..hi];
            let mut acc = [0.0f64; LANES];
            let mut cv = vals.chunks_exact(LANES);
            let mut cc = cols.chunks_exact(LANES);
            for (v8, c8) in cv.by_ref().zip(cc.by_ref()) {
                for l in 0..LANES {
                    acc[l] += v8[l] * x[c8[l]];
                }
            }
            for (l, (v, c)) in cv.remainder().iter().zip(cc.remainder()).enumerate() {
                acc[l] += v * x[*c];
            }
            *out = reduce_lanes_f64(&acc);
        }
    }
}

/// Execution strategy a [`SpmvPlan`] selected at build time.
///
/// The choice is a pure function of the matrix *structure* (shape and
/// row-length distribution), never of the values, so a plan built for a
/// Jacobian sparsity pattern stays valid when the numeric entries
/// change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpmvStrategy {
    /// Sequential per-row accumulation — the reference order. Chosen
    /// for matrices too small for blocking to pay (`nnz <`
    /// [`SpmvPlan::NAIVE_MAX_NNZ`]), where call overhead dominates.
    Naive,
    /// Sliced-ELLPACK with [`LANES`]-row slices (SELL-8). Chosen for
    /// the short-row regime (crossbar Jacobians: ~5 entries per row)
    /// when zero-padding stays under 1.5× the stored non-zeros.
    Sell,
    /// The per-row dispatching [`spmv_csr`] kernel. Chosen when rows
    /// are long or ragged enough that SELL padding would waste more
    /// flops than the lane split recovers.
    LaneCsr,
}

/// A prepared CSR sparse matrix–vector product.
///
/// [`spmv_csr`] decides its accumulation order per row on every call;
/// for the short-row matrices that dominate this workspace (circuit
/// Jacobians at ~5 entries per row) that means the per-row dispatch
/// branch is pure overhead and every row is a serial dependency chain.
/// `SpmvPlan` moves the decision to *build* time and, in the short-row
/// regime, re-packs the matrix into SELL-8 (sliced ELLPACK): rows are
/// grouped into slices of [`LANES`] = 8, each slice padded to its
/// widest row (padding entries are `0.0` at column 0) and stored
/// column-major within the slice, so the apply loop runs 8 independent
/// accumulator chains — the same instruction-level parallelism as the
/// dense kernels — with no per-row branching.
///
/// Build the plan once per sparsity pattern and amortize it across the
/// many products an iterative solver performs (every CG iteration,
/// every Newton sweep): that is where the win lives, and why the
/// benchmarks time `apply` with the plan built outside the loop.
///
/// # Determinism
///
/// Within each row the products accumulate in ascending position —
/// exactly the [`naive::spmv_csr`](crate::naive::spmv_csr) order — so
/// for finite inputs the result is **bit-identical to naive** under
/// every strategy, with two documented SELL caveats: a row whose exact
/// result is `-0.0` returns `+0.0` (trailing `+ 0.0` padding terms
/// round `-0.0 + 0.0` to `+0.0`), and a non-finite `x[0]` poisons
/// padded rows (`0.0 × ∞ = NaN`). Neither occurs in this workspace's
/// solvers, which assert finite inputs.
///
/// # Example
///
/// ```
/// // [[2, -1], [-1, 2]] · [1, 3]
/// let plan = kernels::SpmvPlan::new(&[0, 2, 4], &[0, 1, 0, 1], &[2.0, -1.0, -1.0, 2.0], 2);
/// let mut y = [0.0f64; 2];
/// plan.apply(&[1.0, 3.0], &mut y);
/// assert_eq!(y, [-1.0, 5.0]);
/// ```
#[derive(Debug, Clone)]
pub struct SpmvPlan {
    rows: usize,
    cols: usize,
    nnz: usize,
    strategy: SpmvStrategy,
    /// CSR buffers; retained for `Naive` and `LaneCsr`, cleared for
    /// `Sell` (the SELL buffers replace them).
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
    /// Per-slice padded width (max row nnz in the slice); `Sell` only.
    slice_width: Vec<usize>,
    /// Column indices, column-major within each 8-row slice.
    sell_cols: Vec<usize>,
    /// Values matching `sell_cols`; padding entries are `0.0`.
    sell_vals: Vec<f64>,
}

impl SpmvPlan {
    /// Below this many stored non-zeros the plan stays [`SpmvStrategy::Naive`]:
    /// the whole product fits in a few hundred flops and blocking
    /// overhead costs more than it saves.
    pub const NAIVE_MAX_NNZ: usize = 256;

    /// Builds a plan from raw CSR buffers (copied), choosing the
    /// strategy from the structure:
    ///
    /// 1. `nnz <` [`Self::NAIVE_MAX_NNZ`] → [`SpmvStrategy::Naive`];
    /// 2. SELL-8 padding ≤ 1.5 × nnz → [`SpmvStrategy::Sell`];
    /// 3. otherwise → [`SpmvStrategy::LaneCsr`].
    ///
    /// # Panics
    ///
    /// Panics on inconsistent CSR structure: `row_ptr` not starting at
    /// 0, not non-decreasing, or not covering `col_idx`/`values`;
    /// mismatched `col_idx`/`values` lengths; or a column index `≥
    /// cols`.
    pub fn new(row_ptr: &[usize], col_idx: &[usize], values: &[f64], cols: usize) -> Self {
        assert!(!row_ptr.is_empty(), "spmv plan: row_ptr must be non-empty");
        assert_eq!(col_idx.len(), values.len(), "spmv plan: structure length");
        assert_eq!(row_ptr[0], 0, "spmv plan: row_ptr must start at 0");
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "spmv plan: row_ptr must be non-decreasing"
        );
        assert_eq!(
            *row_ptr.last().expect("row_ptr is non-empty"),
            values.len(),
            "spmv plan: row pointers must cover all entries"
        );
        assert!(
            col_idx.iter().all(|&c| c < cols),
            "spmv plan: column index out of bounds"
        );

        let rows = row_ptr.len() - 1;
        let nnz = values.len();

        // SELL-8 padded size: each 8-row slice pads to its widest row.
        let mut padded = 0usize;
        for slice in row_ptr.windows(2).collect::<Vec<_>>().chunks(LANES) {
            let width = slice.iter().map(|w| w[1] - w[0]).max().unwrap_or(0);
            padded += width * LANES;
        }

        let strategy = if nnz < Self::NAIVE_MAX_NNZ {
            SpmvStrategy::Naive
        } else if 2 * padded <= 3 * nnz {
            SpmvStrategy::Sell
        } else {
            SpmvStrategy::LaneCsr
        };

        let mut plan = SpmvPlan {
            rows,
            cols,
            nnz,
            strategy,
            row_ptr: row_ptr.to_vec(),
            col_idx: col_idx.to_vec(),
            values: values.to_vec(),
            slice_width: Vec::new(),
            sell_cols: Vec::new(),
            sell_vals: Vec::new(),
        };

        if strategy == SpmvStrategy::Sell {
            plan.slice_width.reserve(rows.div_ceil(LANES));
            plan.sell_cols.reserve(padded);
            plan.sell_vals.reserve(padded);
            for slice_rows in (0..rows).collect::<Vec<_>>().chunks(LANES) {
                let width = slice_rows
                    .iter()
                    .map(|&r| row_ptr[r + 1] - row_ptr[r])
                    .max()
                    .unwrap_or(0);
                plan.slice_width.push(width);
                for j in 0..width {
                    for l in 0..LANES {
                        // Real entry at position j of the lane's row, or
                        // zero padding (value 0.0 at column 0).
                        match slice_rows.get(l) {
                            Some(&r) if row_ptr[r] + j < row_ptr[r + 1] => {
                                plan.sell_cols.push(col_idx[row_ptr[r] + j]);
                                plan.sell_vals.push(values[row_ptr[r] + j]);
                            }
                            _ => {
                                plan.sell_cols.push(0);
                                plan.sell_vals.push(0.0);
                            }
                        }
                    }
                }
            }
            // The SELL buffers fully describe the matrix; drop the CSR
            // copies so a cached plan costs one layout, not two.
            plan.row_ptr = Vec::new();
            plan.col_idx = Vec::new();
            plan.values = Vec::new();
        }

        plan
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros (excluding SELL padding).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The strategy chosen at build time.
    pub fn strategy(&self) -> SpmvStrategy {
        self.strategy
    }

    /// Computes `y = A·x` using the prepared layout.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    #[inline]
    pub fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "spmv plan apply: x length");
        assert_eq!(y.len(), self.rows, "spmv plan apply: y length");
        match self.strategy {
            SpmvStrategy::Naive => {
                crate::naive::spmv_csr(&self.row_ptr, &self.col_idx, &self.values, x, y);
            }
            SpmvStrategy::LaneCsr => {
                spmv_csr(&self.row_ptr, &self.col_idx, &self.values, x, y);
            }
            SpmvStrategy::Sell => {
                let mut base = 0usize;
                for (s, &width) in self.slice_width.iter().enumerate() {
                    let r0 = s * LANES;
                    let mut acc = [0.0f64; LANES];
                    for j in 0..width {
                        let off = base + j * LANES;
                        let vals = &self.sell_vals[off..off + LANES];
                        let cols = &self.sell_cols[off..off + LANES];
                        for l in 0..LANES {
                            acc[l] += vals[l] * x[cols[l]];
                        }
                    }
                    let live = LANES.min(self.rows - r0);
                    y[r0..r0 + live].copy_from_slice(&acc[..live]);
                    base += width * LANES;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use proptest::prelude::*;

    #[test]
    fn tridiagonal_known() {
        // [[2, -1, 0], [-1, 2, -1], [0, -1, 2]] · [1, 2, 3]
        let row_ptr = [0usize, 2, 5, 7];
        let col_idx = [0usize, 1, 0, 1, 2, 1, 2];
        let values = [2.0, -1.0, -1.0, 2.0, -1.0, -1.0, 2.0];
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0f64; 3];
        spmv_csr(&row_ptr, &col_idx, &values, &x, &mut y);
        assert_eq!(y, [0.0, 0.0, 4.0]);
    }

    #[test]
    fn empty_matrix() {
        let mut y: [f64; 0] = [];
        spmv_csr(&[0], &[], &[], &[], &mut y);
    }

    #[test]
    #[should_panic(expected = "row pointer length")]
    fn bad_row_ptr_rejected() {
        let mut y = [0.0f64; 2];
        spmv_csr(&[0, 1], &[0], &[1.0], &[1.0], &mut y);
    }

    /// Random CSR with `rows[r]` entries in row r over `n_cols` columns.
    fn random_csr(rows: &[usize], n_cols: usize, seed: u64) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        let mut state = seed.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(7);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for &nnz in rows {
            for _ in 0..nnz {
                col_idx.push((next() % n_cols as u64) as usize);
                values.push((next() % 1000) as f64 / 100.0 - 5.0);
            }
            row_ptr.push(col_idx.len());
        }
        (row_ptr, col_idx, values)
    }

    #[test]
    fn plan_small_matrix_is_naive() {
        let plan = SpmvPlan::new(&[0, 2, 4], &[0, 1, 0, 1], &[2.0, -1.0, -1.0, 2.0], 2);
        assert_eq!(plan.strategy(), SpmvStrategy::Naive);
        assert_eq!((plan.rows(), plan.cols(), plan.nnz()), (2, 2, 4));
        let mut y = [0.0f64; 2];
        plan.apply(&[1.0, 3.0], &mut y);
        assert_eq!(y, [-1.0, 5.0]);
    }

    #[test]
    fn plan_short_rows_pick_sell() {
        // 128 rows × 5 entries: the crossbar-Jacobian shape.
        let rows = vec![5usize; 128];
        let (row_ptr, col_idx, values) = random_csr(&rows, 64, 3);
        let plan = SpmvPlan::new(&row_ptr, &col_idx, &values, 64);
        assert_eq!(plan.strategy(), SpmvStrategy::Sell);
    }

    #[test]
    fn plan_ragged_rows_fall_back_to_lane_csr() {
        // One 400-entry row per 8-row slice forces ~8x padding.
        let rows: Vec<usize> = (0..64).map(|r| if r % 8 == 0 { 400 } else { 1 }).collect();
        let (row_ptr, col_idx, values) = random_csr(&rows, 64, 5);
        let plan = SpmvPlan::new(&row_ptr, &col_idx, &values, 64);
        assert_eq!(plan.strategy(), SpmvStrategy::LaneCsr);
    }

    #[test]
    fn plan_empty_matrix() {
        let plan = SpmvPlan::new(&[0], &[], &[], 0);
        let mut y: [f64; 0] = [];
        plan.apply(&[], &mut y);
    }

    #[test]
    #[should_panic(expected = "column index out of bounds")]
    fn plan_rejects_out_of_bounds_column() {
        SpmvPlan::new(&[0, 1], &[3], &[1.0], 3);
    }

    proptest! {
        /// SELL and naive plans are bit-identical to `naive::spmv_csr`
        /// for finite inputs, at any row-length mix that stays in the
        /// short-row regime (partial final slices included).
        #[test]
        fn plan_bit_identical_to_naive(
            rows in proptest::collection::vec(0usize..=8, 1..80),
            seed in 0u64..8,
        ) {
            let n_cols = 16usize;
            let (row_ptr, col_idx, values) = random_csr(&rows, n_cols, seed);
            // With every row at ≤ 8 entries each strategy is
            // bit-identical: Naive and Sell by the ascending-position
            // order, LaneCsr via spmv_csr's short-row path.
            let plan = SpmvPlan::new(&row_ptr, &col_idx, &values, n_cols);
            let x: Vec<f64> = (0..n_cols).map(|i| i as f64 * 0.7 - 2.0).collect();
            let mut got = vec![0.0f64; rows.len()];
            plan.apply(&x, &mut got);
            let mut reference = vec![0.0f64; rows.len()];
            naive::spmv_csr(&row_ptr, &col_idx, &values, &x, &mut reference);
            for (a, b) in got.iter().zip(&reference) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        /// The lane-CSR fallback stays within the documented ulp bound
        /// of naive (same bound as the `spmv_close_to_naive` law).
        #[test]
        fn plan_lane_csr_close_to_naive(
            seed in 0u64..8,
        ) {
            let rows: Vec<usize> = (0..32).map(|r| if r % 8 == 0 { 200 } else { 1 }).collect();
            let n_cols = 16usize;
            let (row_ptr, col_idx, values) = random_csr(&rows, n_cols, seed);
            let plan = SpmvPlan::new(&row_ptr, &col_idx, &values, n_cols);
            prop_assert_eq!(plan.strategy(), SpmvStrategy::LaneCsr);
            let x: Vec<f64> = (0..n_cols).map(|i| i as f64 * 0.3 - 1.0).collect();
            let mut got = vec![0.0f64; rows.len()];
            plan.apply(&x, &mut got);
            let mut reference = vec![0.0f64; rows.len()];
            naive::spmv_csr(&row_ptr, &col_idx, &values, &x, &mut reference);
            for (r, (a, b)) in got.iter().zip(&reference).enumerate() {
                let lo = row_ptr[r];
                let hi = row_ptr[r + 1];
                let magnitude: f64 = (lo..hi).map(|k| (values[k] * x[col_idx[k]]).abs()).sum();
                let bound = (f64::EPSILON * magnitude * (hi - lo).max(1) as f64).max(1e-12);
                prop_assert!((a - b).abs() <= bound, "row {r}: {a} vs {b}");
            }
        }
    }

    proptest! {
        /// Rows with at most 8 entries use the sequential order and are
        /// bit-identical to the pre-kernel loop.
        #[test]
        fn short_rows_bit_identical_to_naive(
            rows in proptest::collection::vec(0usize..=8, 1..12),
            seed in 0u64..8,
        ) {
            let n_cols = 8usize;
            let mut row_ptr = vec![0usize];
            let mut col_idx = Vec::new();
            let mut values = Vec::new();
            let mut state = seed.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(7);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for &nnz in &rows {
                for _ in 0..nnz {
                    col_idx.push((next() % n_cols as u64) as usize);
                    values.push((next() % 1000) as f64 / 100.0 - 5.0);
                }
                row_ptr.push(col_idx.len());
            }
            let x: Vec<f64> = (0..n_cols).map(|i| i as f64 * 0.7 - 2.0).collect();
            let mut blocked = vec![0.0f64; rows.len()];
            spmv_csr(&row_ptr, &col_idx, &values, &x, &mut blocked);
            let mut reference = vec![0.0f64; rows.len()];
            naive::spmv_csr(&row_ptr, &col_idx, &values, &x, &mut reference);
            for (a, b) in blocked.iter().zip(&reference) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        /// Lane-blocked rows stay within a tight bound of the old
        /// sequential row accumulation.
        #[test]
        fn spmv_close_to_naive(
            rows in proptest::collection::vec(0usize..24, 1..12),
            seed in 0u64..16,
        ) {
            // Build a random CSR: `rows[r]` entries in row r, columns
            // cycling over an 8-wide x.
            let n_cols = 8usize;
            let mut row_ptr = vec![0usize];
            let mut col_idx = Vec::new();
            let mut values = Vec::new();
            let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for &nnz in &rows {
                for _ in 0..nnz {
                    col_idx.push((next() % n_cols as u64) as usize);
                    values.push((next() % 1000) as f64 / 100.0 - 5.0);
                }
                row_ptr.push(col_idx.len());
            }
            let x: Vec<f64> = (0..n_cols).map(|i| i as f64 * 0.3 - 1.0).collect();
            let mut blocked = vec![0.0f64; rows.len()];
            spmv_csr(&row_ptr, &col_idx, &values, &x, &mut blocked);
            let mut reference = vec![0.0f64; rows.len()];
            naive::spmv_csr(&row_ptr, &col_idx, &values, &x, &mut reference);
            for (r, (a, b)) in blocked.iter().zip(&reference).enumerate() {
                let lo = row_ptr[r];
                let hi = row_ptr[r + 1];
                let magnitude: f64 = (lo..hi).map(|k| (values[k] * x[col_idx[k]]).abs()).sum();
                let bound = (f64::EPSILON * magnitude * (hi - lo).max(1) as f64).max(1e-12);
                prop_assert!((a - b).abs() <= bound, "row {r}: {a} vs {b}");
            }
        }
    }
}

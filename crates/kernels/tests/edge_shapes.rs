//! Edge-shape regression tests: empty operands, single-row/column
//! matrices, and lane-tail lengths straddling the 8-lane block size.
//!
//! Where a kernel documents bit-identity with its `naive` ordering
//! (`gemm_nn` everywhere, `spmv_csr` on rows of at most `LANES`
//! entries, `gemm_nt` against `dot_f32`), these tests assert exact bit
//! patterns; elsewhere they pin the documented ulp-style bound.

use kernels::{naive, LANES};

/// Lengths that straddle the lane width: tails of 7, exact blocks,
/// and one-past-a-block.
const TAILS: [usize; 7] = [1, 7, 8, 9, 15, 16, 17];

fn series_f32(len: usize, scale: f32) -> Vec<f32> {
    (0..len).map(|i| (i as f32 * 0.61 - 2.3) * scale).collect()
}

fn series_f64(len: usize, scale: f64) -> Vec<f64> {
    (0..len).map(|i| (i as f64 * 0.37 - 1.9) * scale).collect()
}

#[test]
fn dot_empty_and_tails() {
    assert_eq!(kernels::dot_f32(&[], &[]), 0.0);
    assert_eq!(kernels::dot_f64(&[], &[]), 0.0);
    for len in TAILS {
        let a = series_f32(len, 0.9);
        let b = series_f32(len, -1.1);
        let blocked = kernels::dot_f32(&a, &b);
        let reference = naive::dot_f32(&a, &b);
        let magnitude: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        let bound = f32::EPSILON * magnitude * len as f32;
        assert!(
            (blocked - reference).abs() <= bound,
            "dot_f32 len {len}: {blocked} vs {reference}"
        );
        let a = series_f64(len, 0.9);
        let b = series_f64(len, -1.1);
        let blocked = kernels::dot_f64(&a, &b);
        let reference = naive::dot_f64(&a, &b);
        let magnitude: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        assert!(
            (blocked - reference).abs() <= f64::EPSILON * magnitude * len as f64,
            "dot_f64 len {len}: {blocked} vs {reference}"
        );
    }
}

#[test]
fn gemm_nn_empty_shapes() {
    let mut empty: [f32; 0] = [];
    // m = 0 (empty lhs, k > 0).
    kernels::gemm_nn(&[], &series_f32(3 * 4, 1.0), &mut empty, 3, 4);
    // n = 0.
    kernels::gemm_nn(&series_f32(2 * 3, 1.0), &[], &mut empty, 3, 0);
    naive::gemm_nn(&series_f32(2 * 3, 1.0), &[], &mut empty, 3, 0);
    // k = 0: all-zero product, stale output overwritten.
    let mut blocked = [5.0f32; 6];
    let mut reference = [7.0f32; 6];
    kernels::gemm_nn(&[], &[], &mut blocked, 0, 3);
    naive::gemm_nn(&[], &[], &mut reference, 0, 3);
    assert_eq!(blocked, [0.0; 6]);
    assert_eq!(blocked, reference);
}

#[test]
fn gemm_nt_empty_shapes() {
    let mut empty: [f32; 0] = [];
    kernels::gemm_nt(&[], &series_f32(4 * 3, 1.0), &mut empty, 3, 4);
    naive::gemm_nt(&[], &series_f32(4 * 3, 1.0), &mut empty, 3, 4);
    // n = 0: previously panicked in the naive reference.
    kernels::gemm_nt(&series_f32(2 * 3, 1.0), &[], &mut empty, 3, 0);
    naive::gemm_nt(&series_f32(2 * 3, 1.0), &[], &mut empty, 3, 0);
    let mut blocked = [5.0f32; 4];
    let mut reference = [7.0f32; 4];
    kernels::gemm_nt(&[], &[], &mut blocked, 0, 2);
    naive::gemm_nt(&[], &[], &mut reference, 0, 2);
    assert_eq!(blocked, [0.0; 4]);
    assert_eq!(blocked, reference);
}

#[test]
fn gemm_nn_single_row_column_and_tails_bit_identical() {
    let mut shapes = vec![(1, 5, 9), (9, 5, 1), (1, 1, 1), (1, 17, 1)];
    for k in TAILS {
        for n in TAILS {
            shapes.push((3, k, n));
        }
    }
    for (m, k, n) in shapes {
        let a = series_f32(m * k, 1.3);
        let b = series_f32(k * n, -0.7);
        let mut blocked = vec![0.0f32; m * n];
        let mut reference = vec![0.0f32; m * n];
        kernels::gemm_nn(&a, &b, &mut blocked, k, n);
        naive::gemm_nn(&a, &b, &mut reference, k, n);
        for (i, (x, y)) in blocked.iter().zip(&reference).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "gemm_nn {m}x{k}x{n} element {i}: {x} vs {y}"
            );
        }
    }
}

#[test]
fn gemm_nt_matches_dot_spec_on_tails() {
    for k in TAILS {
        for (m, n) in [(1, 9), (9, 1), (2, 5)] {
            let a = series_f32(m * k, 0.8);
            let b = series_f32(n * k, -1.2);
            let mut out = vec![0.0f32; m * n];
            kernels::gemm_nt(&a, &b, &mut out, k, n);
            for i in 0..m {
                for j in 0..n {
                    let expect = kernels::dot_f32(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
                    assert_eq!(
                        out[i * n + j].to_bits(),
                        expect.to_bits(),
                        "gemm_nt {m}x{k}x{n} at ({i},{j})"
                    );
                }
            }
        }
    }
}

#[test]
fn gemv_empty_and_tails() {
    // Empty input vector: output is the init term (plus an exact 0.0).
    let init = [1.5f32, -2.5];
    let mut out = [0.0f32; 2];
    kernels::gemv_into_f32(&[], &[], &init, &mut out);
    assert_eq!(out, init);
    kernels::gemv_bias_relu_f32(&[], &[], &init, &mut out);
    assert_eq!(out, [1.5, 0.0]);
    // Empty output: nothing to write.
    let mut none: [f32; 0] = [];
    kernels::gemv_into_f32(&[], &series_f32(4, 1.0), &[], &mut none);
    let mut none64: [f64; 0] = [];
    kernels::gemv_levels_scaled(&[], &series_f32(4, 1.0), 0.25, &mut none64);
    kernels::gemv_levels_scaled(&[], &[], 0.25, &mut [0.0f64; 0]);

    for k in TAILS {
        let w = series_f32(3 * k, 0.6);
        let x = series_f32(k, -0.9);
        let init = series_f32(3, 0.2);
        let mut out = [0.0f32; 3];
        kernels::gemv_into_f32(&w, &x, &init, &mut out);
        for j in 0..3 {
            let expect = init[j] + kernels::dot_f32(&w[j * k..(j + 1) * k], &x);
            assert_eq!(out[j].to_bits(), expect.to_bits(), "gemv k {k} row {j}");
        }

        let mat = series_f64(2 * k, 1e-5);
        let mut out = [0.0f64; 2];
        let mut reference = [0.0f64; 2];
        kernels::gemv_levels_scaled(&mat, &x, 0.25, &mut out);
        naive::gemv_levels_scaled(&mat, &x, 0.25, &mut reference);
        for j in 0..2 {
            let magnitude: f64 = mat[j * k..(j + 1) * k]
                .iter()
                .zip(&x)
                .map(|(m, v)| (m * f64::from(*v)).abs())
                .sum();
            let bound = (f64::EPSILON * magnitude * 0.25 * k as f64).max(1e-18);
            assert!(
                (out[j] - reference[j]).abs() <= bound,
                "gemv_levels_scaled k {k} row {j}: {} vs {}",
                out[j],
                reference[j]
            );
        }
    }
}

#[test]
fn spmv_empty_and_short_rows_bit_identical() {
    // Zero rows.
    kernels::spmv_csr(&[0], &[], &[], &[], &mut []);
    // Empty rows mixed with short rows: all sequential, so exact.
    let row_ptr = [0usize, 0, 2, 2, 5];
    let col_idx = [1usize, 3, 0, 2, 3];
    let values = series_f64(5, 0.8);
    let x = series_f64(4, 1.1);
    let mut blocked = [0.0f64; 4];
    let mut reference = [0.0f64; 4];
    kernels::spmv_csr(&row_ptr, &col_idx, &values, &x, &mut blocked);
    naive::spmv_csr(&row_ptr, &col_idx, &values, &x, &mut reference);
    for (i, (a, b)) in blocked.iter().zip(&reference).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "spmv row {i}");
    }
    assert_eq!(blocked[0], 0.0);
    assert_eq!(blocked[2], 0.0);
}

#[test]
fn spmv_lane_tail_rows() {
    // One dense row per tail length; rows of nnz <= LANES must be
    // bit-identical, longer rows ulp-bounded against the naive loop.
    for nnz in TAILS {
        let cols: Vec<usize> = (0..nnz).collect();
        let row_ptr = [0usize, nnz];
        let values = series_f64(nnz, -0.4);
        let x = series_f64(nnz, 0.9);
        let mut blocked = [0.0f64];
        let mut reference = [0.0f64];
        kernels::spmv_csr(&row_ptr, &cols, &values, &x, &mut blocked);
        naive::spmv_csr(&row_ptr, &cols, &values, &x, &mut reference);
        if nnz <= LANES {
            assert_eq!(
                blocked[0].to_bits(),
                reference[0].to_bits(),
                "spmv nnz {nnz} must be exact"
            );
        } else {
            let magnitude: f64 = values.iter().zip(&x).map(|(v, xv)| (v * xv).abs()).sum();
            assert!(
                (blocked[0] - reference[0]).abs() <= f64::EPSILON * magnitude * nnz as f64,
                "spmv nnz {nnz}: {} vs {}",
                blocked[0],
                reference[0]
            );
        }
    }
}

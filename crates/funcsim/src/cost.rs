//! Hardware cost estimation for crossbar-mapped networks.
//!
//! The accelerators GENIEx models (ISAAC, PUMA) are motivated by
//! energy/latency, so the functional simulator carries a matching cost
//! model: given a frozen network and an architecture configuration, it
//! counts the analog crossbar reads, ADC/DAC conversions and
//! shift-and-add operations each layer performs, and converts them to
//! energy and (fully serialized) latency using per-operation constants.
//!
//! Default constants are ISAAC-class order-of-magnitude values; they
//! parameterize *relative* comparisons (e.g. the bit-slicing sweep's
//! accuracy/energy trade-off), not absolute silicon numbers.

use crate::arch::{ArchConfig, WeightMapping};
use crate::fixed::digit_count;
use crate::FuncsimError;
use vision::{NetworkSpec, SpecOp};

/// Per-operation energy and latency constants.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Energy of one analog crossbar read (all columns), picojoules.
    pub xbar_read_pj: f64,
    /// Energy per ADC conversion (one column sample), picojoules.
    pub adc_conversion_pj: f64,
    /// Energy per DAC-driven row per step, picojoules.
    pub dac_drive_pj: f64,
    /// Energy per shift-and-add merge, picojoules.
    pub shift_add_pj: f64,
    /// Latency of one crossbar read, nanoseconds.
    pub xbar_read_ns: f64,
    /// Latency of one ADC conversion, nanoseconds.
    pub adc_conversion_ns: f64,
}

impl CostModel {
    /// ISAAC-class defaults (order of magnitude).
    pub fn isaac_class() -> Self {
        CostModel {
            xbar_read_pj: 1.2,
            adc_conversion_pj: 2.0,
            dac_drive_pj: 0.05,
            shift_add_pj: 0.02,
            xbar_read_ns: 100.0,
            adc_conversion_ns: 1.0,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::isaac_class()
    }
}

/// Operation counts and cost of one MVM-bearing layer, per input image.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCost {
    /// Human-readable layer label (`conv 8->16` / `linear 16->8`).
    pub label: String,
    /// MVM positions per image (conv: out_h·out_w; linear: 1).
    pub positions: u64,
    /// Analog crossbar reads per image.
    pub xbar_reads: u64,
    /// ADC conversions per image.
    pub adc_conversions: u64,
    /// DAC row drives per image.
    pub dac_drives: u64,
    /// Shift-and-add merges per image.
    pub shift_adds: u64,
    /// Energy per image, picojoules.
    pub energy_pj: f64,
    /// Fully serialized latency per image, nanoseconds.
    pub latency_ns: f64,
}

/// Whole-network cost summary, per input image.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkCost {
    /// Per-layer breakdown, in execution order.
    pub layers: Vec<LayerCost>,
    /// Total energy per image, picojoules.
    pub total_energy_pj: f64,
    /// Total serialized latency per image, nanoseconds.
    pub total_latency_ns: f64,
}

impl NetworkCost {
    /// Total crossbar reads per image.
    pub fn total_xbar_reads(&self) -> u64 {
        self.layers.iter().map(|l| l.xbar_reads).sum()
    }

    /// Total ADC conversions per image.
    pub fn total_adc_conversions(&self) -> u64 {
        self.layers.iter().map(|l| l.adc_conversions).sum()
    }
}

/// Estimates the per-image execution cost of `spec` on `arch`.
///
/// Counting model: every (position, tile, slice, weight-sign, stream)
/// tuple is one analog crossbar read; each read converts every column
/// of the tile through the ADC once; each read drives the tile's rows
/// through DACs; every ADC output passes one shift-and-add merge.
/// Latency serializes everything (no inter-tile parallelism), which is
/// the conservative single-ADC-per-crossbar corner of the paper's
/// architecture space.
///
/// # Errors
///
/// Returns [`FuncsimError::InvalidConfig`] for an invalid `arch` or a
/// spec whose shapes don't propagate (mismatched conv input channels).
pub fn estimate_cost(
    spec: &NetworkSpec,
    arch: &ArchConfig,
    model: &CostModel,
) -> Result<NetworkCost, FuncsimError> {
    arch.validate()?;
    let size = arch.xbar.rows as u64;
    let streams = digit_count(arch.input_format.magnitude_bits(), arch.stream_width) as u64;
    let (signs, weight_bits) = match arch.weight_mapping {
        WeightMapping::Differential => (2u64, arch.weight_format.magnitude_bits()),
        WeightMapping::Offset => (1u64, arch.weight_format.total_bits()),
    };
    let slices = digit_count(weight_bits, arch.slice_width) as u64;

    let mut shape = (
        spec.input_shape[0],
        spec.input_shape[1],
        spec.input_shape[2],
    );
    let mut flat = shape.0 * shape.1 * shape.2;
    let mut layers = Vec::new();

    for op in &spec.ops {
        match op {
            SpecOp::Conv2d {
                weight,
                stride,
                padding,
                ..
            } => {
                let [oc, ic, kh, kw] = *<&[usize; 4]>::try_from(weight.shape())
                    .map_err(|_| FuncsimError::InvalidConfig("conv weight rank".into()))?;
                if ic != shape.0 {
                    return Err(FuncsimError::InvalidConfig(format!(
                        "conv expects {ic} channels, activation has {}",
                        shape.0
                    )));
                }
                let out_h = (shape.1 + 2 * padding - kh) / stride + 1;
                let out_w = (shape.2 + 2 * padding - kw) / stride + 1;
                let positions = (out_h * out_w) as u64;
                let fan_in = (ic * kh * kw) as u64;
                layers.push(layer_cost(
                    format!("conv {ic}->{oc} {kh}x{kw}"),
                    positions,
                    fan_in,
                    oc as u64,
                    size,
                    slices,
                    signs,
                    streams,
                    model,
                ));
                shape = (oc, out_h, out_w);
                flat = oc * out_h * out_w;
            }
            SpecOp::Linear { weight, .. } => {
                let [out, inp] = *<&[usize; 2]>::try_from(weight.shape())
                    .map_err(|_| FuncsimError::InvalidConfig("linear weight rank".into()))?;
                if inp != flat {
                    return Err(FuncsimError::InvalidConfig(format!(
                        "linear expects {inp} features, activation has {flat}"
                    )));
                }
                layers.push(layer_cost(
                    format!("linear {inp}->{out}"),
                    1,
                    inp as u64,
                    out as u64,
                    size,
                    slices,
                    signs,
                    streams,
                    model,
                ));
                flat = out;
                shape = (out, 1, 1);
            }
            SpecOp::MaxPool2 => {
                shape = (shape.0, shape.1 / 2, shape.2 / 2);
                flat = shape.0 * shape.1 * shape.2;
            }
            SpecOp::GlobalAvgPool => {
                shape = (shape.0, 1, 1);
                flat = shape.0;
            }
            SpecOp::Flatten => {}
            SpecOp::Relu | SpecOp::ResidualBegin | SpecOp::ResidualAdd => {}
        }
    }

    let total_energy_pj = layers.iter().map(|l| l.energy_pj).sum();
    let total_latency_ns = layers.iter().map(|l| l.latency_ns).sum();
    Ok(NetworkCost {
        layers,
        total_energy_pj,
        total_latency_ns,
    })
}

#[allow(clippy::too_many_arguments)]
fn layer_cost(
    label: String,
    positions: u64,
    fan_in: u64,
    fan_out: u64,
    size: u64,
    slices: u64,
    signs: u64,
    streams: u64,
    model: &CostModel,
) -> LayerCost {
    let tile_rows = fan_in.div_ceil(size);
    let tile_cols = fan_out.div_ceil(size);
    let xbar_reads = positions * tile_rows * tile_cols * slices * signs * streams;
    let adc_conversions = xbar_reads * size;
    let dac_drives = positions * tile_rows * streams * size * signs;
    let shift_adds = adc_conversions;
    let energy_pj = xbar_reads as f64 * model.xbar_read_pj
        + adc_conversions as f64 * model.adc_conversion_pj
        + dac_drives as f64 * model.dac_drive_pj
        + shift_adds as f64 * model.shift_add_pj;
    let latency_ns =
        xbar_reads as f64 * model.xbar_read_ns + adc_conversions as f64 * model.adc_conversion_ns;
    LayerCost {
        label,
        positions,
        xbar_reads,
        adc_conversions,
        dac_drives,
        shift_adds,
        energy_pj,
        latency_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vision::{MicroResNet, SynthSpec};
    use xbar::CrossbarParams;

    fn arch16() -> ArchConfig {
        ArchConfig::default().with_xbar(CrossbarParams::builder(16, 16).build().unwrap())
    }

    #[test]
    fn counts_for_known_network() {
        let spec = MicroResNet::new(SynthSpec::SynthS, 1).to_spec();
        let cost = estimate_cost(&spec, &arch16(), &CostModel::default()).unwrap();
        // 7 MVM layers in MicroResNet-S.
        assert_eq!(cost.layers.len(), 7);
        // Stem conv: 12x12 positions, fan_in 9 -> 1 tile row at 16.
        let stem = &cost.layers[0];
        assert_eq!(stem.positions, 144);
        // 144 pos * 1 tr * 1 tc * 4 slices * 2 signs * 4 streams.
        assert_eq!(stem.xbar_reads, 144 * 4 * 2 * 4);
        assert_eq!(stem.adc_conversions, stem.xbar_reads * 16);
        assert!(cost.total_energy_pj > 0.0);
        assert!(cost.total_latency_ns > 0.0);
        assert_eq!(
            cost.total_xbar_reads(),
            cost.layers.iter().map(|l| l.xbar_reads).sum::<u64>()
        );
    }

    #[test]
    fn narrower_digits_cost_more() {
        let spec = MicroResNet::new(SynthSpec::SynthS, 1).to_spec();
        let wide = estimate_cost(&spec, &arch16(), &CostModel::default()).unwrap();
        let narrow = estimate_cost(
            &spec,
            &arch16().with_bit_slicing(1, 1),
            &CostModel::default(),
        )
        .unwrap();
        // 15 streams x 15 slices vs 4 x 4.
        assert!(narrow.total_energy_pj > wide.total_energy_pj * 10.0);
    }

    #[test]
    fn bigger_crossbars_cost_fewer_reads() {
        let spec = MicroResNet::new(SynthSpec::SynthS, 1).to_spec();
        let small = estimate_cost(&spec, &arch16(), &CostModel::default()).unwrap();
        let big = estimate_cost(
            &spec,
            &ArchConfig::default().with_xbar(CrossbarParams::builder(64, 64).build().unwrap()),
            &CostModel::default(),
        )
        .unwrap();
        assert!(big.total_xbar_reads() < small.total_xbar_reads());
    }

    #[test]
    fn offset_mapping_halves_sign_copies() {
        let spec = MicroResNet::new(SynthSpec::SynthS, 1).to_spec();
        let differential = estimate_cost(&spec, &arch16(), &CostModel::default()).unwrap();
        let offset = estimate_cost(
            &spec,
            &ArchConfig {
                weight_mapping: WeightMapping::Offset,
                ..arch16()
            },
            &CostModel::default(),
        )
        .unwrap();
        // Offset slices cover 16 bits (4 slices) but use 1 sign copy:
        // exactly half the reads of differential (4 slices x 2 signs).
        assert_eq!(
            offset.total_xbar_reads() * 2,
            differential.total_xbar_reads()
        );
    }

    #[test]
    fn shape_mismatch_detected() {
        let mut spec = MicroResNet::new(SynthSpec::SynthS, 1).to_spec();
        // Drop the stem conv: the next conv expects 8 channels but the
        // input has 1.
        spec.ops.remove(0);
        assert!(estimate_cost(&spec, &arch16(), &CostModel::default()).is_err());
    }
}

//! Layer-by-layer error diagnostics.
//!
//! The paper's Section 1 argument is that MVM errors *accumulate over
//! the layers* of a network. This module makes that visible: it runs
//! the crossbar simulator and the FP32 reference side by side and
//! reports, after every MVM op, the signal-to-noise ratio of the
//! crossbar activations against the reference.

use crate::arch::ArchConfig;
use crate::engine::CrossbarEngine;
use crate::network::CrossbarNetwork;
use crate::FuncsimError;
use nn::Tensor;
use vision::{spec_forward, NetworkSpec, SpecOp};

/// Per-MVM-layer comparison of crossbar vs FP32 activations.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDiagnostic {
    /// Index of the op within the spec.
    pub op_index: usize,
    /// Human-readable label.
    pub label: String,
    /// Root-mean-square of the reference activation.
    pub signal_rms: f64,
    /// Root-mean-square of (crossbar − reference).
    pub error_rms: f64,
}

impl LayerDiagnostic {
    /// Signal-to-noise ratio in dB (`+inf` for zero error).
    pub fn snr_db(&self) -> f64 {
        if self.error_rms == 0.0 {
            f64::INFINITY
        } else {
            20.0 * (self.signal_rms / self.error_rms).log10()
        }
    }
}

/// Runs `spec` on both the FP32 path and the crossbar simulator and
/// compares activations after every conv/linear op.
///
/// The comparison truncates each prefix of the spec and re-executes
/// it, which is quadratic in depth but exact (no instrumentation
/// plumbing through either executor); intended for small diagnostic
/// batches.
///
/// # Errors
///
/// Propagates build and inference failures from both paths.
pub fn layer_diagnostics(
    spec: &NetworkSpec,
    arch: &ArchConfig,
    engine: &dyn CrossbarEngine,
    images: &Tensor,
) -> Result<Vec<LayerDiagnostic>, FuncsimError> {
    let mut out = Vec::new();
    for (i, op) in spec.ops.iter().enumerate() {
        let label = match op {
            SpecOp::Conv2d { weight, .. } => {
                format!("conv {}->{}", weight.shape()[1], weight.shape()[0])
            }
            SpecOp::Linear { weight, .. } => {
                format!("linear {}->{}", weight.shape()[1], weight.shape()[0])
            }
            _ => continue,
        };
        // A prefix is only executable if it doesn't cut a residual
        // region in half; extend to the enclosing ResidualAdd if needed.
        let mut end = i + 1;
        let mut depth = 0i32;
        for op in &spec.ops[..end] {
            match op {
                SpecOp::ResidualBegin => depth += 1,
                SpecOp::ResidualAdd => depth -= 1,
                _ => {}
            }
        }
        while depth > 0 {
            match &spec.ops[end] {
                SpecOp::ResidualAdd => depth -= 1,
                SpecOp::ResidualBegin => depth += 1,
                _ => {}
            }
            end += 1;
        }
        let prefix = NetworkSpec {
            ops: spec.ops[..end].to_vec(),
            input_shape: spec.input_shape,
            // Classes metadata is unused by forward passes.
            classes: spec.classes,
        };
        let reference = spec_forward(&prefix, images)?;
        let net = CrossbarNetwork::build(prefix, arch, engine)?;
        let actual = net.forward(images)?;

        let n = reference.len().max(1) as f64;
        let signal_rms = (reference
            .data()
            .iter()
            .map(|&v| (v as f64).powi(2))
            .sum::<f64>()
            / n)
            .sqrt();
        let error_rms = (reference
            .data()
            .iter()
            .zip(actual.data())
            .map(|(&r, &a)| ((r - a) as f64).powi(2))
            .sum::<f64>()
            / n)
            .sqrt();
        let diag = LayerDiagnostic {
            op_index: i,
            label,
            signal_rms,
            error_rms,
        };
        telemetry::emit(
            "layer_snr",
            "funcsim.layer_diagnostics",
            vec![
                ("op_index".to_string(), telemetry::Json::from(diag.op_index)),
                (
                    "label".to_string(),
                    telemetry::Json::from(diag.label.as_str()),
                ),
                (
                    "signal_rms".to_string(),
                    telemetry::Json::from(diag.signal_rms),
                ),
                (
                    "error_rms".to_string(),
                    telemetry::Json::from(diag.error_rms),
                ),
                ("snr_db".to_string(), telemetry::Json::from(diag.snr_db())),
            ],
        );
        out.push(diag);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{AnalyticalEngine, IdealEngine};
    use vision::{MicroResNet, SynthSpec, SynthVision};
    use xbar::CrossbarParams;

    fn workload() -> (NetworkSpec, Tensor) {
        let model = MicroResNet::new(SynthSpec::SynthS, 3);
        let data = SynthVision::generate(SynthSpec::SynthS, 1, 5).unwrap();
        let (images, _) = data.batch(&[0, 1]).unwrap();
        // Calibrate activation ranges: an uncalibrated random network
        // saturates the fixed-point format and every SNR collapses.
        let spec = vision::rescale_for_fxp(&model.to_spec(), &images, 3.5).unwrap();
        (spec, images)
    }

    fn arch(size: usize) -> ArchConfig {
        ArchConfig {
            adc_bits: 20,
            xbar: CrossbarParams::builder(size, size).build().unwrap(),
            ..ArchConfig::default()
        }
    }

    #[test]
    fn ideal_backend_has_high_snr_everywhere() {
        let (spec, images) = workload();
        let diags = layer_diagnostics(&spec, &arch(16), &IdealEngine, &images).unwrap();
        // 7 MVM layers in MicroResNet-S.
        assert_eq!(diags.len(), 7);
        for d in &diags {
            assert!(
                d.snr_db() > 28.0,
                "{} has snr {:.1} dB",
                d.label,
                d.snr_db()
            );
        }
    }

    #[test]
    fn analytical_backend_shows_lower_snr_than_ideal() {
        let (spec, images) = workload();
        // Hostile design point so the parasitic error is visible.
        let hostile = ArchConfig {
            adc_bits: 20,
            xbar: CrossbarParams::builder(16, 16)
                .r_on(50e3)
                .on_off_ratio(2.0)
                .build()
                .unwrap(),
            ..ArchConfig::default()
        };
        let ideal = layer_diagnostics(&spec, &hostile, &IdealEngine, &images).unwrap();
        let analytical = layer_diagnostics(&spec, &hostile, &AnalyticalEngine, &images).unwrap();
        let last_ideal = ideal.last().unwrap().snr_db();
        let last_analytical = analytical.last().unwrap().snr_db();
        assert!(
            last_analytical < last_ideal,
            "analytical {last_analytical} dB should be below ideal {last_ideal} dB"
        );
    }

    #[test]
    fn snr_events_mirror_returned_diagnostics() {
        let (spec, images) = workload();
        // Serialize against other tests that toggle the global
        // telemetry state.
        let _lock = telemetry::test_lock();
        telemetry::set_enabled(true);
        let sink = std::sync::Arc::new(telemetry::MemorySink::new());
        let sink_id = telemetry::add_sink(sink.clone());
        let diags = layer_diagnostics(&spec, &arch(16), &IdealEngine, &images).unwrap();
        telemetry::remove_sink(sink_id);
        telemetry::set_enabled(false);

        let events: Vec<_> = sink
            .events_for_current_thread()
            .into_iter()
            .filter(|e| e.kind == "layer_snr")
            .collect();
        assert_eq!(events.len(), diags.len());
        for (event, diag) in events.iter().zip(&diags) {
            assert_eq!(event.name, "funcsim.layer_diagnostics");
            assert_eq!(
                event.field("op_index").and_then(telemetry::Json::as_u64),
                Some(diag.op_index as u64)
            );
            assert_eq!(
                event.field("label").and_then(telemetry::Json::as_str),
                Some(diag.label.as_str())
            );
            assert_eq!(
                event.field("signal_rms").and_then(telemetry::Json::as_f64),
                Some(diag.signal_rms)
            );
            assert_eq!(
                event.field("error_rms").and_then(telemetry::Json::as_f64),
                Some(diag.error_rms)
            );
        }
    }

    #[test]
    fn labels_and_indices_line_up() {
        let (spec, images) = workload();
        let diags = layer_diagnostics(&spec, &arch(16), &IdealEngine, &images).unwrap();
        assert!(diags[0].label.starts_with("conv 1->8"));
        assert!(diags.last().unwrap().label.starts_with("linear 16->8"));
        for w in diags.windows(2) {
            assert!(w[0].op_index < w[1].op_index);
        }
    }
}

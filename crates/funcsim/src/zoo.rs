//! Engine decorator threading the non-ideality zoo through tile
//! construction and evaluation.
//!
//! [`ZooEngine`] wraps any [`CrossbarEngine`] with an
//! [`xbar::zoo::NonIdealityStack`]: every programmed tile's target
//! conductances pass through the stack's programming and
//! time-dependent models before reaching the inner backend, and — when
//! the stack carries an active read-stage model — the tile's output
//! currents pass through the read models after every MVM.
//!
//! Tiles draw distinct sub-streams via a per-engine tile counter, and
//! read noise advances a per-tile sample counter, so a batch of `n`
//! MVMs draws exactly the noise `n` single MVMs would — keeping
//! batched and serial execution bit-identical at any thread count.

use crate::engine::{CrossbarEngine, ProgrammedXbar};
use crate::FuncsimError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xbar::zoo::NonIdealityStack;
use xbar::{ConductanceMatrix, CrossbarParams};

/// A [`CrossbarEngine`] whose tiles live in the non-ideality zoo.
pub struct ZooEngine<E> {
    inner: E,
    stack: Arc<NonIdealityStack>,
    tile_counter: AtomicU64,
}

impl<E: CrossbarEngine> ZooEngine<E> {
    /// Wraps `inner`; each programmed tile gets the next tile index,
    /// so its models draw from tile-distinct sub-streams.
    pub fn new(inner: E, stack: NonIdealityStack) -> Self {
        ZooEngine {
            inner,
            stack: Arc::new(stack),
            tile_counter: AtomicU64::new(0),
        }
    }

    /// The wrapped stack.
    pub fn stack(&self) -> &NonIdealityStack {
        &self.stack
    }
}

impl<E: CrossbarEngine> CrossbarEngine for ZooEngine<E> {
    fn name(&self) -> &'static str {
        "zoo"
    }

    fn program(
        &self,
        params: &CrossbarParams,
        g_levels: &[f32],
    ) -> Result<Box<dyn ProgrammedXbar>, FuncsimError> {
        let tile = self.tile_counter.fetch_add(1, Ordering::Relaxed);
        let levels: Vec<f64> = g_levels.iter().map(|&l| l as f64).collect();
        let target = ConductanceMatrix::from_levels(params, &levels)?;
        let programmed = self.stack.program(params, &target, tile)?;
        let programmed_levels: Vec<f32> = programmed
            .to_levels(params)
            .into_iter()
            .map(|x| x as f32)
            .collect();
        let inner = self.inner.program(params, &programmed_levels)?;
        if !self.stack.has_read_stage() {
            return Ok(inner);
        }
        Ok(Box::new(ZooTile {
            inner,
            stack: Arc::clone(&self.stack),
            params: params.clone(),
            tile,
            samples_seen: AtomicU64::new(0),
        }))
    }
}

/// A programmed tile whose output currents pass through the stack's
/// read-stage models.
struct ZooTile {
    inner: Box<dyn ProgrammedXbar>,
    stack: Arc<NonIdealityStack>,
    params: CrossbarParams,
    tile: u64,
    samples_seen: AtomicU64,
}

impl ProgrammedXbar for ZooTile {
    fn currents_batch(&self, v_levels: &[f32], n: usize) -> Result<Vec<f64>, FuncsimError> {
        let mut out = self.inner.currents_batch(v_levels, n)?;
        // Reserve a contiguous block of sample indices so a batch of n
        // draws the same noise as n singles issued in the same order.
        let base = self.samples_seen.fetch_add(n as u64, Ordering::Relaxed);
        let cols = self.params.cols;
        for (s, chunk) in out.chunks_mut(cols).enumerate() {
            self.stack
                .read(&self.params, chunk, self.tile, base + s as u64)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::IdealEngine;
    use xbar::zoo::{ConductanceDrift, LognormalSpread, ReadNoise};

    fn params() -> CrossbarParams {
        CrossbarParams::builder(8, 8).build().unwrap()
    }

    fn stack_with(model: Box<dyn xbar::NonIdeality>) -> NonIdealityStack {
        NonIdealityStack::new(7).with_model(model).unwrap()
    }

    #[test]
    fn empty_stack_is_transparent() {
        let p = params();
        let engine = ZooEngine::new(IdealEngine, NonIdealityStack::new(7));
        let g = [0.5f32; 64];
        let v = [1.0f32; 8];
        let a = engine
            .program(&p, &g)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        let b = IdealEngine
            .program(&p, &g)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn drift_attenuates_every_current() {
        let p = params();
        let engine = ZooEngine::new(
            IdealEngine,
            stack_with(Box::new(ConductanceDrift {
                t: 1e4,
                t0: 1.0,
                nu: 0.05,
            })),
        );
        let g = [1.0f32; 64];
        let v = [1.0f32; 8];
        let drifted = engine
            .program(&p, &g)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        let clean = IdealEngine
            .program(&p, &g)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        for (d, c) in drifted.iter().zip(&clean) {
            assert!(d < c, "drifted current {d} must sit below clean {c}");
        }
    }

    #[test]
    fn read_noise_batch_matches_singles_bit_exactly() {
        let p = params();
        let g = [0.5f32; 64];
        let v1 = [1.0f32; 8];
        let v2 = [0.5f32; 8];
        let flat: Vec<f32> = v1.iter().chain(v2.iter()).copied().collect();
        let noise = || stack_with(Box::new(ReadNoise { sigma: 0.05 }));

        let batched = ZooEngine::new(IdealEngine, noise())
            .program(&p, &g)
            .unwrap()
            .currents_batch(&flat, 2)
            .unwrap();
        let singles_tile = ZooEngine::new(IdealEngine, noise())
            .program(&p, &g)
            .unwrap();
        let s1 = singles_tile.currents_batch(&v1, 1).unwrap();
        let s2 = singles_tile.currents_batch(&v2, 1).unwrap();
        assert_eq!(&batched[..8], &s1[..]);
        assert_eq!(&batched[8..], &s2[..]);

        // And the noise really is noise.
        let clean = IdealEngine
            .program(&p, &g)
            .unwrap()
            .currents_batch(&v1, 1)
            .unwrap();
        assert_ne!(s1, clean);
    }

    #[test]
    fn tiles_draw_distinct_programming_streams() {
        let p = params();
        let engine = ZooEngine::new(
            IdealEngine,
            stack_with(Box::new(LognormalSpread { sigma: 0.3 })),
        );
        let g = [0.5f32; 64];
        let v = [1.0f32; 8];
        let t1 = engine
            .program(&p, &g)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        let t2 = engine
            .program(&p, &g)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        assert_ne!(t1, t2, "successive tiles must draw distinct spreads");
    }

    #[test]
    fn programming_only_stack_does_not_wrap_reads() {
        // Two identically-seeded engines: programming effects are baked
        // into the tile, so repeated reads are bit-stable.
        let p = params();
        let engine = ZooEngine::new(
            IdealEngine,
            stack_with(Box::new(LognormalSpread { sigma: 0.3 })),
        );
        let tile = engine.program(&p, &[0.5f32; 64]).unwrap();
        let v = [1.0f32; 8];
        let a = tile.currents_batch(&v, 1).unwrap();
        let b = tile.currents_batch(&v, 1).unwrap();
        assert_eq!(a, b);
    }
}

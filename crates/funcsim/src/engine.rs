//! Pluggable crossbar evaluation engines.
//!
//! The simulator expresses every analog crossbar operation through two
//! traits: a [`CrossbarEngine`] *programs* a tile (conductance levels →
//! whatever precomputation that backend needs), and the resulting
//! [`ProgrammedXbar`] evaluates batches of input-level vectors to
//! physical bit-line currents. Four backends implement the paper's
//! simulation modes:
//!
//! | engine | physics | cost per MVM |
//! |---|---|---|
//! | [`IdealEngine`] | none (exact MVM) | one GEMV |
//! | [`AnalyticalEngine`] | linear parasitics (CxDNN-style `M(G)`) | one GEMV |
//! | [`GeniexEngine`] | learned linear + nonlinear | two GEMVs |
//! | [`CircuitEngine`] | full nonlinear solve (ground truth) | one Newton solve |

use crate::FuncsimError;
use geniex::{Geniex, GeniexTile};
use xbar::{AnalyticalModel, ConductanceMatrix, CrossbarCircuit, CrossbarParams};

/// Programs conductance patterns into backend-specific tile state.
pub trait CrossbarEngine {
    /// Short name used in experiment reports.
    fn name(&self) -> &'static str;

    /// Programs one tile. `g_levels` is row-major `rows·cols` in
    /// `[0, 1]` (level 0 = `g_off`).
    ///
    /// # Errors
    ///
    /// Implementations reject level vectors that don't match the
    /// crossbar geometry and propagate backend construction failures.
    fn program(
        &self,
        params: &CrossbarParams,
        g_levels: &[f32],
    ) -> Result<Box<dyn ProgrammedXbar>, FuncsimError>;
}

/// A programmed tile ready to evaluate MVMs.
pub trait ProgrammedXbar: Send + Sync {
    /// Evaluates `n` input vectors given as normalized levels
    /// (row-major `n × rows`, each level in `[0, 1]`), returning
    /// bit-line currents in amperes (row-major `n × cols`).
    ///
    /// # Errors
    ///
    /// Returns [`FuncsimError::Shape`] on length mismatch and
    /// propagates solver failures.
    fn currents_batch(&self, v_levels: &[f32], n: usize) -> Result<Vec<f64>, FuncsimError>;
}

/// Boxed engines forward, so decorators like `ZooEngine` can wrap a
/// runtime-selected backend without knowing its concrete type.
impl CrossbarEngine for Box<dyn CrossbarEngine> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn program(
        &self,
        params: &CrossbarParams,
        g_levels: &[f32],
    ) -> Result<Box<dyn ProgrammedXbar>, FuncsimError> {
        self.as_ref().program(params, g_levels)
    }
}

fn check_levels(
    params: &CrossbarParams,
    g_levels: &[f32],
) -> Result<ConductanceMatrix, FuncsimError> {
    if g_levels.len() != params.rows * params.cols {
        return Err(FuncsimError::Shape(format!(
            "{} conductance levels for a {}x{} crossbar",
            g_levels.len(),
            params.rows,
            params.cols
        )));
    }
    let levels: Vec<f64> = g_levels.iter().map(|&l| l as f64).collect();
    Ok(ConductanceMatrix::from_levels(params, &levels)?)
}

fn check_batch(rows: usize, v_levels: &[f32], n: usize) -> Result<(), FuncsimError> {
    if v_levels.len() != n * rows {
        return Err(FuncsimError::Shape(format!(
            "{} input levels for {n} vectors of {rows} rows",
            v_levels.len()
        )));
    }
    Ok(())
}

/// Dense `cols × rows` matvec in f64 over f32 level inputs, shared by
/// the two linear backends.
fn gemv_batch(
    matrix: &[f64],
    rows: usize,
    cols: usize,
    scale: f64,
    v_levels: &[f32],
    n: usize,
) -> Vec<f64> {
    // Each batch item's GEMV is independent and bit-identical whether
    // it runs in the panel-blocked batch kernel, a thread chunk, or
    // the serial loop, so the split is purely a scheduling choice.
    // Small batches stay serial: below this flop count the fan-out
    // overhead dominates.
    const PAR_MIN_FLOPS: usize = 32 * 1024;
    let mut out = vec![0.0f64; n * cols];
    let pool = parallel::global();
    if n > 1 && pool.threads() > 1 && n * rows * cols >= PAR_MIN_FLOPS {
        let group = n.div_ceil(pool.threads() * 2).max(1);
        pool.scope(|s| {
            for (vb, ob) in v_levels
                .chunks(group * rows)
                .zip(out.chunks_mut(group * cols))
            {
                s.spawn(move || {
                    kernels::gemv_levels_scaled_batch(matrix, vb, scale, ob, vb.len() / rows);
                });
            }
        });
    } else {
        kernels::gemv_levels_scaled_batch(matrix, v_levels, scale, &mut out, n);
    }
    out
}

/// The ideal (non-ideality-free) backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealEngine;

struct IdealTile {
    /// `G`ᵀ stored `cols × rows` (conductances in siemens).
    gt: Vec<f64>,
    rows: usize,
    cols: usize,
    v_supply: f64,
}

impl ProgrammedXbar for IdealTile {
    fn currents_batch(&self, v_levels: &[f32], n: usize) -> Result<Vec<f64>, FuncsimError> {
        check_batch(self.rows, v_levels, n)?;
        Ok(gemv_batch(
            &self.gt,
            self.rows,
            self.cols,
            self.v_supply,
            v_levels,
            n,
        ))
    }
}

impl CrossbarEngine for IdealEngine {
    fn name(&self) -> &'static str {
        "ideal"
    }

    fn program(
        &self,
        params: &CrossbarParams,
        g_levels: &[f32],
    ) -> Result<Box<dyn ProgrammedXbar>, FuncsimError> {
        let g = check_levels(params, g_levels)?;
        let (rows, cols) = (params.rows, params.cols);
        let mut gt = vec![0.0f64; rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                gt[j * rows + i] = g.get(i, j);
            }
        }
        Ok(Box::new(IdealTile {
            gt,
            rows,
            cols,
            v_supply: params.v_supply,
        }))
    }
}

/// The linear analytical backend (parasitics only).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticalEngine;

struct AnalyticalTile {
    /// Effective `M(G)` stored `cols × rows`.
    m: Vec<f64>,
    rows: usize,
    cols: usize,
    v_supply: f64,
}

impl ProgrammedXbar for AnalyticalTile {
    fn currents_batch(&self, v_levels: &[f32], n: usize) -> Result<Vec<f64>, FuncsimError> {
        check_batch(self.rows, v_levels, n)?;
        Ok(gemv_batch(
            &self.m,
            self.rows,
            self.cols,
            self.v_supply,
            v_levels,
            n,
        ))
    }
}

impl CrossbarEngine for AnalyticalEngine {
    fn name(&self) -> &'static str {
        "analytical"
    }

    fn program(
        &self,
        params: &CrossbarParams,
        g_levels: &[f32],
    ) -> Result<Box<dyn ProgrammedXbar>, FuncsimError> {
        let g = check_levels(params, g_levels)?;
        let model = AnalyticalModel::new(params, &g)?;
        let eff = model.effective_matrix();
        let (rows, cols) = (params.rows, params.cols);
        let mut m = vec![0.0f64; rows * cols];
        for j in 0..cols {
            for i in 0..rows {
                m[j * rows + i] = eff[(j, i)];
            }
        }
        Ok(Box::new(AnalyticalTile {
            m,
            rows,
            cols,
            v_supply: params.v_supply,
        }))
    }
}

/// The GENIEx surrogate backend.
///
/// Holds one or more trained surrogates; programming a tile runs the
/// fast-forward weight split per member, so per-MVM cost is two small
/// GEMVs per member. With several members the predicted `f_R` is the
/// ensemble mean — independent initialization seeds make member errors
/// roughly uncorrelated, cutting prediction noise by ≈ √k.
#[derive(Debug, Clone)]
pub struct GeniexEngine {
    members: Vec<Geniex>,
}

impl GeniexEngine {
    /// Wraps a single trained surrogate.
    pub fn new(surrogate: Geniex) -> Self {
        GeniexEngine {
            members: vec![surrogate],
        }
    }

    /// Wraps an ensemble of surrogates trained for the *same* design
    /// point (typically identical data, different init seeds).
    ///
    /// # Errors
    ///
    /// Returns [`FuncsimError::InvalidConfig`] if the list is empty or
    /// the members disagree on the design point.
    pub fn ensemble(members: Vec<Geniex>) -> Result<Self, FuncsimError> {
        let first = members
            .first()
            .ok_or_else(|| FuncsimError::InvalidConfig("empty ensemble".into()))?;
        if members.iter().any(|m| m.params() != first.params()) {
            return Err(FuncsimError::InvalidConfig(
                "ensemble members target different design points".into(),
            ));
        }
        Ok(GeniexEngine { members })
    }

    /// The wrapped surrogates' design parameters.
    pub fn params(&self) -> &CrossbarParams {
        self.members[0].params()
    }

    /// Number of ensemble members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }
}

struct GeniexProgrammedTile {
    tiles: Vec<GeniexTile>,
    /// `G`ᵀ for the ideal numerator, `cols × rows`.
    gt: Vec<f64>,
    rows: usize,
    cols: usize,
    v_supply: f64,
}

impl ProgrammedXbar for GeniexProgrammedTile {
    fn currents_batch(&self, v_levels: &[f32], n: usize) -> Result<Vec<f64>, FuncsimError> {
        check_batch(self.rows, v_levels, n)?;
        // Ensemble members are independent; their predictions sum in
        // member order, so the f32 accumulation matches the serial loop
        // bit for bit at any thread count.
        let members = parallel::par_map_grained(&self.tiles, 1, |tile| tile.f_r_batch(v_levels, n));
        let mut iter = members.into_iter();
        let mut f_r = iter.next().expect("ensemble is non-empty")?;
        for member in iter {
            let member = member?;
            for (acc, m) in f_r.iter_mut().zip(&member) {
                *acc += m;
            }
        }
        let scale = 1.0 / self.tiles.len() as f32;
        let mut out = gemv_batch(&self.gt, self.rows, self.cols, self.v_supply, v_levels, n);
        for (i, fr) in out.iter_mut().zip(&f_r) {
            if *i != 0.0 {
                *i /= (*fr * scale) as f64;
            }
        }
        Ok(out)
    }
}

impl CrossbarEngine for GeniexEngine {
    fn name(&self) -> &'static str {
        "geniex"
    }

    fn program(
        &self,
        params: &CrossbarParams,
        g_levels: &[f32],
    ) -> Result<Box<dyn ProgrammedXbar>, FuncsimError> {
        if params != self.params() {
            return Err(FuncsimError::InvalidConfig(format!(
                "surrogate was trained for a different design point \
                 ({}x{} Ron {}) than requested ({}x{} Ron {})",
                self.params().rows,
                self.params().cols,
                self.params().r_on,
                params.rows,
                params.cols,
                params.r_on,
            )));
        }
        let g = check_levels(params, g_levels)?;
        let tiles = self
            .members
            .iter()
            .map(|m| GeniexTile::new(m, g_levels))
            .collect::<Result<Vec<_>, _>>()?;
        let (rows, cols) = (params.rows, params.cols);
        let mut gt = vec![0.0f64; rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                gt[j * rows + i] = g.get(i, j);
            }
        }
        Ok(Box::new(GeniexProgrammedTile {
            tiles,
            gt,
            rows,
            cols,
            v_supply: params.v_supply,
        }))
    }
}

/// The ground-truth backend: every MVM is a full nonlinear solve.
/// Orders of magnitude slower; used for validation on tiny networks.
#[derive(Debug, Clone, Copy, Default)]
pub struct CircuitEngine;

struct CircuitTile {
    circuit: CrossbarCircuit,
    rows: usize,
    v_supply: f64,
    /// Amortized-solve state (DESIGN.md §15): the content-keyed frozen
    /// Jacobian factorization plus the previous sample's node voltages.
    /// Consecutive stimuli on the same tile are similar, so warm-starting
    /// Newton from the last operating point cuts iterations substantially,
    /// and the factorization is shared with every tile programmed with the
    /// same conductances.
    cache: std::sync::Mutex<xbar::SolverCache>,
}

impl ProgrammedXbar for CircuitTile {
    fn currents_batch(&self, v_levels: &[f32], n: usize) -> Result<Vec<f64>, FuncsimError> {
        check_batch(self.rows, v_levels, n)?;
        // Assemble the whole row-major panel up front so one factorization
        // serves all `n` right-hand sides in `solve_batch`.
        let mut volts = vec![0.0f64; n * self.rows];
        for (v, &l) in volts.iter_mut().zip(v_levels) {
            *v = l as f64 * self.v_supply;
        }
        let mut cache = self.cache.lock().expect("solver cache poisoned");
        let reports = self.circuit.solve_batch(&volts, n, &mut cache)?;
        let mut out = Vec::with_capacity(n * self.circuit.params().cols);
        for report in &reports {
            out.extend_from_slice(&report.currents);
        }
        Ok(out)
    }
}

impl CrossbarEngine for CircuitEngine {
    fn name(&self) -> &'static str {
        "circuit"
    }

    fn program(
        &self,
        params: &CrossbarParams,
        g_levels: &[f32],
    ) -> Result<Box<dyn ProgrammedXbar>, FuncsimError> {
        let g = check_levels(params, g_levels)?;
        let circuit = CrossbarCircuit::new(params, &g)?;
        let cache = std::sync::Mutex::new(xbar::SolverCache::for_circuit(&circuit));
        Ok(Box::new(CircuitTile {
            circuit,
            rows: params.rows,
            v_supply: params.v_supply,
            cache,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geniex::dataset::{generate, DatasetConfig};
    use geniex::TrainConfig;

    fn params() -> CrossbarParams {
        CrossbarParams::builder(4, 4).build().unwrap()
    }

    fn trained_engine(p: &CrossbarParams) -> GeniexEngine {
        let data = generate(
            p,
            &DatasetConfig {
                samples: 50,
                seed: 2,
                ..DatasetConfig::default()
            },
        )
        .unwrap();
        let mut s = Geniex::new(p, 16, 5).unwrap();
        s.train(
            &data,
            &TrainConfig {
                epochs: 15,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        GeniexEngine::new(s)
    }

    #[test]
    fn ideal_engine_is_exact_mvm() {
        let p = params();
        let tile = IdealEngine.program(&p, &[1.0; 16]).unwrap();
        let out = tile.currents_batch(&[1.0, 1.0, 1.0, 1.0], 1).unwrap();
        let expect = 4.0 * p.v_supply * p.g_on();
        for i in out {
            assert!((i - expect).abs() < 1e-15);
        }
    }

    #[test]
    fn engines_validate_shapes() {
        let p = params();
        assert!(IdealEngine.program(&p, &[0.5; 15]).is_err());
        let tile = IdealEngine.program(&p, &[0.5; 16]).unwrap();
        assert!(tile.currents_batch(&[0.5; 7], 2).is_err());
    }

    #[test]
    fn analytical_below_ideal() {
        let p = params();
        let ideal = IdealEngine.program(&p, &[1.0; 16]).unwrap();
        let analytical = AnalyticalEngine.program(&p, &[1.0; 16]).unwrap();
        let v = [1.0f32; 4];
        let i_ideal = ideal.currents_batch(&v, 1).unwrap();
        let i_analytical = analytical.currents_batch(&v, 1).unwrap();
        for (a, b) in i_analytical.iter().zip(&i_ideal) {
            assert!(a < b);
            assert!(*a > 0.0);
        }
    }

    #[test]
    fn circuit_engine_matches_direct_solve() {
        let p = params();
        let tile = CircuitEngine.program(&p, &[1.0; 16]).unwrap();
        let out = tile.currents_batch(&[1.0; 4], 1).unwrap();
        let g = ConductanceMatrix::uniform(4, 4, p.g_on());
        let direct = CrossbarCircuit::new(&p, &g)
            .unwrap()
            .solve(&[p.v_supply; 4])
            .unwrap()
            .currents;
        for (a, b) in out.iter().zip(&direct) {
            // The engine runs the amortized frozen-Jacobian path, which
            // stops at a different (equally converged) iterate than the
            // cold exact-Newton solve; agreement is bounded by the solver
            // tolerance, not by machine epsilon (DESIGN.md §15).
            assert!((a - b).abs() < 1e-6 * b.abs() + 1e-10);
        }
    }

    #[test]
    fn geniex_engine_checks_design_point() {
        let p = params();
        let engine = trained_engine(&p);
        assert!(engine.program(&p, &[0.5; 16]).is_ok());
        let other = CrossbarParams::builder(4, 4).r_on(50e3).build().unwrap();
        assert!(engine.program(&other, &[0.5; 16]).is_err());
    }

    #[test]
    fn geniex_engine_tracks_circuit_better_than_wild() {
        // Smoke test: the surrogate backend's currents are in the same
        // ballpark as the circuit's for a dense pattern.
        let p = params();
        let engine = trained_engine(&p);
        let g_levels = [1.0f32; 16];
        let v = [1.0f32; 4];
        let geniex_out = engine
            .program(&p, &g_levels)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        let circuit_out = CircuitEngine
            .program(&p, &g_levels)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        for (a, b) in geniex_out.iter().zip(&circuit_out) {
            // Ballpark bound only: the tiny smoke-test surrogate lands
            // at 10-25% error depending on the seed stream of the RNG
            // in use (the in-tree `rand` stand-in differs from
            // upstream). Accuracy proper is covered by fig5/validate.
            assert!(
                (a - b).abs() < 0.3 * b,
                "geniex {a} too far from circuit {b}"
            );
        }
    }

    #[test]
    fn batch_consistency_across_engines() {
        let p = params();
        let engines: Vec<Box<dyn CrossbarEngine>> = vec![
            Box::new(IdealEngine),
            Box::new(AnalyticalEngine),
            Box::new(CircuitEngine),
        ];
        let g_levels: Vec<f32> = (0..16).map(|k| (k % 3) as f32 / 2.0).collect();
        let v1 = [1.0f32, 0.0, 0.5, 0.25];
        let v2 = [0.25f32, 0.25, 0.0, 1.0];
        let flat: Vec<f32> = v1.iter().chain(v2.iter()).copied().collect();
        for e in &engines {
            let tile = e.program(&p, &g_levels).unwrap();
            let batch = tile.currents_batch(&flat, 2).unwrap();
            let s1 = tile.currents_batch(&v1, 1).unwrap();
            let s2 = tile.currents_batch(&v2, 1).unwrap();
            // Ideal/analytical are pure arithmetic and must be bit-stable
            // across batching. The circuit engine warm-starts Newton from
            // whatever the cache last held, so batched and single solves
            // stop at different (equally converged) iterates; agreement is
            // bounded by the solver tolerance instead (DESIGN.md §15).
            let tol = if e.name() == "circuit" { 1e-12 } else { 1e-15 };
            for j in 0..4 {
                assert!((batch[j] - s1[j]).abs() < tol, "{}", e.name());
                assert!((batch[4 + j] - s2[j]).abs() < tol, "{}", e.name());
            }
        }
    }
}

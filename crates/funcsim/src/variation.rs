//! Engine decorator injecting programming imperfections.
//!
//! Wraps any [`CrossbarEngine`] so that each tile's target conductance
//! levels pass through [`xbar::apply_variations`] before programming —
//! modelling lognormal programming spread and stuck-at faults on top of
//! whichever non-ideality backend is active.
//!
//! Each programmed tile draws a distinct defect map (the wrapper
//! advances a per-tile seed), mirroring a chip where each physical
//! array has its own faults.

use crate::engine::{CrossbarEngine, ProgrammedXbar};
use crate::FuncsimError;
use std::sync::atomic::{AtomicU64, Ordering};
use xbar::{apply_variations, ConductanceMatrix, CrossbarParams, VariationConfig};

/// A [`CrossbarEngine`] whose tiles are programmed imperfectly.
pub struct VariationEngine<E> {
    inner: E,
    config: VariationConfig,
    tile_counter: AtomicU64,
}

impl<E: CrossbarEngine> VariationEngine<E> {
    /// Wraps `inner`; every programmed tile gets its own defect map
    /// derived from `config.seed` plus a per-tile counter.
    ///
    /// # Errors
    ///
    /// Propagates [`VariationConfig::validate`] failures.
    pub fn new(inner: E, config: VariationConfig) -> Result<Self, FuncsimError> {
        config.validate()?;
        Ok(VariationEngine {
            inner,
            config,
            tile_counter: AtomicU64::new(0),
        })
    }
}

impl<E: CrossbarEngine> CrossbarEngine for VariationEngine<E> {
    fn name(&self) -> &'static str {
        "variation"
    }

    fn program(
        &self,
        params: &CrossbarParams,
        g_levels: &[f32],
    ) -> Result<Box<dyn ProgrammedXbar>, FuncsimError> {
        let levels: Vec<f64> = g_levels.iter().map(|&l| l as f64).collect();
        let target = ConductanceMatrix::from_levels(params, &levels)?;
        let tile_seed = self
            .config
            .seed
            .wrapping_add(self.tile_counter.fetch_add(1, Ordering::Relaxed));
        let varied = apply_variations(
            params,
            &target,
            &VariationConfig {
                seed: tile_seed,
                ..self.config
            },
        )?;
        let varied_levels: Vec<f32> = varied
            .to_levels(params)
            .into_iter()
            .map(|x| x as f32)
            .collect();
        self.inner.program(params, &varied_levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::IdealEngine;

    fn params() -> CrossbarParams {
        CrossbarParams::builder(8, 8).build().unwrap()
    }

    #[test]
    fn zero_variation_is_transparent() {
        let p = params();
        let engine = VariationEngine::new(IdealEngine, VariationConfig::none()).unwrap();
        let g = [0.5f32; 64];
        let v = [1.0f32; 8];
        let a = engine
            .program(&p, &g)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        let b = IdealEngine
            .program(&p, &g)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-18);
        }
    }

    #[test]
    fn variation_perturbs_currents() {
        let p = params();
        let engine = VariationEngine::new(
            IdealEngine,
            VariationConfig {
                conductance_sigma: 0.3,
                seed: 5,
                ..VariationConfig::none()
            },
        )
        .unwrap();
        let g = [0.5f32; 64];
        let v = [1.0f32; 8];
        let varied = engine
            .program(&p, &g)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        let clean = IdealEngine
            .program(&p, &g)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        let max_rel = varied
            .iter()
            .zip(&clean)
            .map(|(a, b)| ((a - b) / b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_rel > 0.01, "variation should visibly move currents");
    }

    #[test]
    fn tiles_get_distinct_defect_maps() {
        let p = params();
        let engine = VariationEngine::new(
            IdealEngine,
            VariationConfig {
                stuck_off_rate: 0.3,
                seed: 5,
                ..VariationConfig::none()
            },
        )
        .unwrap();
        let g = [1.0f32; 64];
        let v = [1.0f32; 8];
        let t1 = engine
            .program(&p, &g)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        let t2 = engine
            .program(&p, &g)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        assert_ne!(t1, t2, "successive tiles must differ in fault pattern");
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(VariationEngine::new(
            IdealEngine,
            VariationConfig {
                stuck_off_rate: 2.0,
                ..VariationConfig::none()
            }
        )
        .is_err());
    }
}

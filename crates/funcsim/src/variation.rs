//! Engine decorator injecting programming imperfections.
//!
//! Wraps any [`CrossbarEngine`] so that each tile's target conductance
//! levels pass through the migrated [`xbar::apply_variations`] model
//! before programming — modelling lognormal programming spread and
//! stuck-at faults on top of whichever non-ideality backend is active.
//!
//! Since the zoo refactor this is a thin compatibility shell over
//! [`ZooEngine`] carrying a single `LegacyVariation` model
//! ([`xbar::zoo::NonIdealityStack::from_variation`]), and its outputs
//! are bit-identical to the pre-zoo implementation: each programmed
//! tile draws a distinct defect map from `config.seed` plus a per-tile
//! counter, mirroring a chip where each physical array has its own
//! faults.

use crate::engine::{CrossbarEngine, ProgrammedXbar};
use crate::zoo::ZooEngine;
use crate::FuncsimError;
use xbar::zoo::NonIdealityStack;
use xbar::{CrossbarParams, VariationConfig};

/// A [`CrossbarEngine`] whose tiles are programmed imperfectly.
pub struct VariationEngine<E> {
    zoo: ZooEngine<E>,
}

impl<E: CrossbarEngine> VariationEngine<E> {
    /// Wraps `inner`; every programmed tile gets its own defect map
    /// derived from `config.seed` plus a per-tile counter.
    ///
    /// # Errors
    ///
    /// Propagates [`VariationConfig::validate`] failures.
    pub fn new(inner: E, config: VariationConfig) -> Result<Self, FuncsimError> {
        let stack = NonIdealityStack::from_variation(&config)?;
        Ok(VariationEngine {
            zoo: ZooEngine::new(inner, stack),
        })
    }
}

impl<E: CrossbarEngine> CrossbarEngine for VariationEngine<E> {
    fn name(&self) -> &'static str {
        "variation"
    }

    fn program(
        &self,
        params: &CrossbarParams,
        g_levels: &[f32],
    ) -> Result<Box<dyn ProgrammedXbar>, FuncsimError> {
        self.zoo.program(params, g_levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::IdealEngine;

    fn params() -> CrossbarParams {
        CrossbarParams::builder(8, 8).build().unwrap()
    }

    #[test]
    fn zero_variation_is_transparent() {
        let p = params();
        let engine = VariationEngine::new(IdealEngine, VariationConfig::none()).unwrap();
        let g = [0.5f32; 64];
        let v = [1.0f32; 8];
        let a = engine
            .program(&p, &g)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        let b = IdealEngine
            .program(&p, &g)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-18);
        }
    }

    #[test]
    fn variation_perturbs_currents() {
        let p = params();
        let engine = VariationEngine::new(
            IdealEngine,
            VariationConfig {
                conductance_sigma: 0.3,
                seed: 5,
                ..VariationConfig::none()
            },
        )
        .unwrap();
        let g = [0.5f32; 64];
        let v = [1.0f32; 8];
        let varied = engine
            .program(&p, &g)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        let clean = IdealEngine
            .program(&p, &g)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        let max_rel = varied
            .iter()
            .zip(&clean)
            .map(|(a, b)| ((a - b) / b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_rel > 0.01, "variation should visibly move currents");
    }

    #[test]
    fn tiles_get_distinct_defect_maps() {
        let p = params();
        let engine = VariationEngine::new(
            IdealEngine,
            VariationConfig {
                stuck_off_rate: 0.3,
                seed: 5,
                ..VariationConfig::none()
            },
        )
        .unwrap();
        let g = [1.0f32; 64];
        let v = [1.0f32; 8];
        let t1 = engine
            .program(&p, &g)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        let t2 = engine
            .program(&p, &g)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        assert_ne!(t1, t2, "successive tiles must differ in fault pattern");
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(VariationEngine::new(
            IdealEngine,
            VariationConfig {
                stuck_off_rate: 2.0,
                ..VariationConfig::none()
            }
        )
        .is_err());
    }

    #[test]
    fn migration_is_bit_identical_to_fused_pass() {
        // The zoo-backed engine must reproduce the pre-refactor path:
        // apply_variations at seed + tile, then the levels round trip.
        let p = params();
        let config = VariationConfig {
            conductance_sigma: 0.2,
            stuck_off_rate: 0.05,
            stuck_on_rate: 0.05,
            seed: 11,
        };
        let engine = VariationEngine::new(IdealEngine, config).unwrap();
        let g = [0.5f32; 64];
        let v = [1.0f32; 8];
        for tile in 0u64..3 {
            let got = engine
                .program(&p, &g)
                .unwrap()
                .currents_batch(&v, 1)
                .unwrap();
            let levels: Vec<f64> = g.iter().map(|&l| l as f64).collect();
            let target = xbar::ConductanceMatrix::from_levels(&p, &levels).unwrap();
            let varied = xbar::apply_variations(
                &p,
                &target,
                &VariationConfig {
                    seed: config.seed.wrapping_add(tile),
                    ..config
                },
            )
            .unwrap();
            let varied_levels: Vec<f32> =
                varied.to_levels(&p).into_iter().map(|x| x as f32).collect();
            let expect = IdealEngine
                .program(&p, &varied_levels)
                .unwrap()
                .currents_batch(&v, 1)
                .unwrap();
            assert_eq!(got, expect, "tile {tile} diverged from the fused pass");
        }
    }
}

//! Crossbar functional simulator (the paper's Section 5 system).
//!
//! Executes frozen DNNs ([`vision::NetworkSpec`]) with the *crossbar*
//! computation model instead of GEMMs, reproducing the three phases of
//! Fig. 6:
//!
//! 1. **Iterative-MVM** — convolutions lowered to repeated MVMs
//!    (im2col), fully-connected layers to single MVMs.
//! 2. **Tiling** — the weight matrix is cut into crossbar-sized tiles;
//!    tiles in a row share an input slice, tiles in a column produce
//!    partial sums.
//! 3. **Bit-slicing** — inputs stream in `stream_width`-bit digits,
//!    weights are stored in `slice_width`-bit slices; every (stream,
//!    slice) pair is one analog crossbar operation, digitized by an
//!    ADC and merged by shift-and-add into a saturating accumulator.
//!
//! Where the analog crossbar operation comes from is pluggable
//! ([`CrossbarEngine`]): ideal arithmetic, the linear analytical model,
//! the GENIEx surrogate, or the full nonlinear circuit solve.
//!
//! Defaults follow the paper's Table 3 footnote: 16-bit inputs/weights
//! (13 fractional), 32-bit accumulator (24 fractional), 14-bit ADC,
//! 4-bit streams, 4-bit slices.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), funcsim::FuncsimError> {
//! use funcsim::{ArchConfig, CrossbarNetwork, IdealEngine};
//! use vision::{MicroResNet, SynthSpec, SynthVision};
//!
//! let model = MicroResNet::new(SynthSpec::SynthS, 1);
//! let arch = ArchConfig::default();
//! let net = CrossbarNetwork::build(model.to_spec(), &arch, &IdealEngine)?;
//! let data = SynthVision::generate(SynthSpec::SynthS, 1, 2)?;
//! let (images, _) = data.batch(&[0])?;
//! let logits = net.forward(&images)?;
//! assert_eq!(logits.shape(), &[1, 8]);
//! # Ok(())
//! # }
//! ```

mod arch;
pub mod cost;
pub mod diagnostics;
mod engine;
mod error;
mod fixed;
mod matrix;
mod network;
mod record;
mod variation;
mod zoo;

pub use arch::{ArchConfig, WeightMapping};
pub use engine::{
    AnalyticalEngine, CircuitEngine, CrossbarEngine, GeniexEngine, IdealEngine, ProgrammedXbar,
};
pub use error::FuncsimError;
pub use fixed::{digit_count, rescale_saturate, split_digits, FxpFormat};
pub use matrix::ProgrammedMatrix;
pub use network::{evaluate_spec, CrossbarNetwork};
pub use record::{harvest_stimuli, RecordingEngine, StimulusLog, WorkloadStimulus};
pub use variation::VariationEngine;
pub use zoo::ZooEngine;

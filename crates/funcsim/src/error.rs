use std::fmt;

/// Errors produced by the functional simulator.
#[derive(Debug)]
#[non_exhaustive]
pub enum FuncsimError {
    /// Invalid architecture configuration (message explains which).
    InvalidConfig(String),
    /// Operand shapes don't match the programmed network.
    Shape(String),
    /// The crossbar substrate failed.
    Xbar(xbar::XbarError),
    /// The GENIEx surrogate failed.
    Geniex(geniex::GeniexError),
    /// The neural-network substrate failed.
    Network(nn::NnError),
    /// The vision substrate failed.
    Vision(vision::VisionError),
}

impl fmt::Display for FuncsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuncsimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            FuncsimError::Shape(msg) => write!(f, "shape mismatch: {msg}"),
            FuncsimError::Xbar(err) => write!(f, "crossbar failure: {err}"),
            FuncsimError::Geniex(err) => write!(f, "surrogate failure: {err}"),
            FuncsimError::Network(err) => write!(f, "network failure: {err}"),
            FuncsimError::Vision(err) => write!(f, "vision failure: {err}"),
        }
    }
}

impl std::error::Error for FuncsimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FuncsimError::Xbar(err) => Some(err),
            FuncsimError::Geniex(err) => Some(err),
            FuncsimError::Network(err) => Some(err),
            FuncsimError::Vision(err) => Some(err),
            _ => None,
        }
    }
}

impl From<xbar::XbarError> for FuncsimError {
    fn from(err: xbar::XbarError) -> Self {
        FuncsimError::Xbar(err)
    }
}

impl From<geniex::GeniexError> for FuncsimError {
    fn from(err: geniex::GeniexError) -> Self {
        FuncsimError::Geniex(err)
    }
}

impl From<nn::NnError> for FuncsimError {
    fn from(err: nn::NnError) -> Self {
        FuncsimError::Network(err)
    }
}

impl From<vision::VisionError> for FuncsimError {
    fn from(err: vision::VisionError) -> Self {
        FuncsimError::Vision(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_sources() {
        let e = FuncsimError::from(xbar::XbarError::Shape("x".into()));
        assert!(e.to_string().contains("crossbar"));
        assert!(e.source().is_some());
        assert!(FuncsimError::InvalidConfig("c".into()).source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FuncsimError>();
    }
}

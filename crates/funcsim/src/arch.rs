//! Architecture parameters of the simulated crossbar accelerator
//! (Table 3 of the paper).

use crate::fixed::FxpFormat;
use crate::FuncsimError;
use xbar::CrossbarParams;

/// How signed weights map onto (unsigned) conductances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightMapping {
    /// Two crossbars per tile: one programmed with the positive parts,
    /// one with the negative parts; results subtracted digitally.
    /// The common scheme in ISAAC/PUMA-class designs.
    #[default]
    Differential,
    /// One crossbar storing `w + 2^(bits-1)`; the constant offset is
    /// subtracted digitally using the input-digit sum. Cheaper in
    /// devices, but every cell carries bias current.
    Offset,
}

/// Full architecture configuration of the functional simulator.
///
/// Defaults reproduce Section 6: 16-bit inputs/weights (13
/// fractional), 32-bit accumulator (24 fractional), 14-bit ADC, 4-bit
/// streams and slices, 64×64 crossbars.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchConfig {
    /// Activation (input) fixed-point format.
    pub input_format: FxpFormat,
    /// Weight fixed-point format.
    pub weight_format: FxpFormat,
    /// Accumulator width in bits.
    pub accumulator_bits: u32,
    /// Accumulator fractional bits.
    pub accumulator_frac: u32,
    /// ADC resolution in bits.
    pub adc_bits: u32,
    /// Input stream width in bits (≥ 1).
    pub stream_width: u32,
    /// Weight slice width in bits (≥ 1).
    pub slice_width: u32,
    /// Signed-weight mapping scheme.
    pub weight_mapping: WeightMapping,
    /// Crossbar design point (size, parasitics, devices, supply).
    pub xbar: CrossbarParams,
}

impl ArchConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`FuncsimError::InvalidConfig`] if the crossbar is not
    /// square, a width is zero or exceeds the magnitude bits, or the
    /// ADC/accumulator sizes are out of range.
    pub fn validate(&self) -> Result<(), FuncsimError> {
        if self.xbar.rows != self.xbar.cols {
            return Err(FuncsimError::InvalidConfig(format!(
                "tiled mapping requires square crossbars, got {}x{}",
                self.xbar.rows, self.xbar.cols
            )));
        }
        if self.stream_width == 0 || self.stream_width > self.input_format.magnitude_bits() {
            return Err(FuncsimError::InvalidConfig(format!(
                "stream_width {} outside 1..={}",
                self.stream_width,
                self.input_format.magnitude_bits()
            )));
        }
        if self.slice_width == 0 || self.slice_width > self.weight_format.magnitude_bits() {
            return Err(FuncsimError::InvalidConfig(format!(
                "slice_width {} outside 1..={}",
                self.slice_width,
                self.weight_format.magnitude_bits()
            )));
        }
        if self.adc_bits == 0 || self.adc_bits > 24 {
            return Err(FuncsimError::InvalidConfig(format!(
                "adc_bits {} outside 1..=24",
                self.adc_bits
            )));
        }
        if self.accumulator_bits < 8
            || self.accumulator_bits > 62
            || self.accumulator_frac >= self.accumulator_bits
        {
            return Err(FuncsimError::InvalidConfig(format!(
                "accumulator {}/{} bits invalid",
                self.accumulator_bits, self.accumulator_frac
            )));
        }
        Ok(())
    }

    /// Number of input streams per MVM.
    pub fn stream_count(&self) -> u32 {
        crate::fixed::digit_count(self.input_format.magnitude_bits(), self.stream_width)
    }

    /// Number of weight slices per matrix.
    pub fn slice_count(&self) -> u32 {
        crate::fixed::digit_count(self.weight_format.magnitude_bits(), self.slice_width)
    }

    /// Replaces both activation and weight precision, keeping the
    /// paper's 3 integer bits (the Fig. 8 sweep).
    ///
    /// # Errors
    ///
    /// Propagates [`FxpFormat::with_total_bits`] failures.
    pub fn with_precision(mut self, bits: u32) -> Result<Self, FuncsimError> {
        self.input_format = FxpFormat::with_total_bits(bits)?;
        self.weight_format = FxpFormat::with_total_bits(bits)?;
        Ok(self)
    }

    /// Replaces the stream and slice widths (the Fig. 9 sweep).
    pub fn with_bit_slicing(mut self, stream_width: u32, slice_width: u32) -> Self {
        self.stream_width = stream_width;
        self.slice_width = slice_width;
        self
    }

    /// Replaces the crossbar design point (the Fig. 7 sweeps).
    pub fn with_xbar(mut self, xbar: CrossbarParams) -> Self {
        self.xbar = xbar;
        self
    }
}

impl Default for ArchConfig {
    fn default() -> Self {
        ArchConfig {
            input_format: FxpFormat::paper_default(),
            weight_format: FxpFormat::paper_default(),
            accumulator_bits: 32,
            accumulator_frac: 24,
            adc_bits: 14,
            stream_width: 4,
            slice_width: 4,
            weight_mapping: WeightMapping::default(),
            xbar: CrossbarParams::builder(64, 64)
                .build()
                .expect("paper-default crossbar parameters are valid"),
        }
    }
}

impl store::Canonical for ArchConfig {
    fn canonicalize(&self, key: &mut store::KeyBuilder) {
        key.u64(
            "input_total_bits",
            u64::from(self.input_format.total_bits()),
        )
        .u64("input_frac_bits", u64::from(self.input_format.frac_bits()))
        .u64(
            "weight_total_bits",
            u64::from(self.weight_format.total_bits()),
        )
        .u64(
            "weight_frac_bits",
            u64::from(self.weight_format.frac_bits()),
        )
        .u64("accumulator_bits", u64::from(self.accumulator_bits))
        .u64("accumulator_frac", u64::from(self.accumulator_frac))
        .u64("adc_bits", u64::from(self.adc_bits))
        .u64("stream_width", u64::from(self.stream_width))
        .u64("slice_width", u64::from(self.slice_width))
        .str(
            "weight_mapping",
            match self.weight_mapping {
                WeightMapping::Differential => "differential",
                WeightMapping::Offset => "offset",
            },
        )
        .nested("xbar", &self.xbar);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let a = ArchConfig::default();
        assert!(a.validate().is_ok());
        assert_eq!(a.input_format.total_bits(), 16);
        assert_eq!(a.accumulator_bits, 32);
        assert_eq!(a.accumulator_frac, 24);
        assert_eq!(a.adc_bits, 14);
        assert_eq!(a.stream_width, 4);
        assert_eq!(a.slice_width, 4);
        assert_eq!(a.xbar.rows, 64);
        // 15 magnitude bits in 4-bit digits -> 4 streams/slices.
        assert_eq!(a.stream_count(), 4);
        assert_eq!(a.slice_count(), 4);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut a = ArchConfig::default();
        a.stream_width = 0;
        assert!(a.validate().is_err());

        let mut a = ArchConfig::default();
        a.slice_width = 16;
        assert!(a.validate().is_err());

        let mut a = ArchConfig::default();
        a.adc_bits = 0;
        assert!(a.validate().is_err());

        let mut a = ArchConfig::default();
        a.accumulator_frac = 40;
        assert!(a.validate().is_err());

        let mut a = ArchConfig::default();
        a.xbar = CrossbarParams::builder(16, 32).build().unwrap();
        assert!(a.validate().is_err());
    }

    #[test]
    fn sweep_helpers() {
        let a = ArchConfig::default().with_precision(8).unwrap();
        assert_eq!(a.input_format.total_bits(), 8);
        assert_eq!(a.weight_format.frac_bits(), 5);
        // 7 magnitude bits in 4-bit digits -> 2 streams.
        assert_eq!(a.stream_count(), 2);

        let a = ArchConfig::default().with_bit_slicing(1, 2);
        assert_eq!(a.stream_count(), 15);
        assert_eq!(a.slice_count(), 8);

        let xb = CrossbarParams::builder(16, 16).build().unwrap();
        let a = ArchConfig::default().with_xbar(xb);
        assert_eq!(a.xbar.rows, 16);
        assert!(a.validate().is_ok());
    }
}

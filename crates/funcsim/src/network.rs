//! Executing a frozen network on the crossbar functional simulator —
//! phase 1 (iterative MVM) plus the glue between MVM ops and the
//! digital ops that stay in the vector unit (ReLU, pooling, residual
//! adds).
//!
//! Activations travel as `f32` values that are always exactly
//! representable in the activation fixed-point format (every op ends
//! with a requantization), mirroring a fully fixed-point datapath.

use crate::arch::ArchConfig;
use crate::engine::CrossbarEngine;
use crate::matrix::ProgrammedMatrix;
use crate::FuncsimError;
use nn::Tensor;
use vision::{NetworkSpec, SpecOp, SynthVision};

/// Shape metadata for a convolution lowered to MVMs.
#[derive(Debug, Clone, Copy)]
struct ConvMeta {
    in_c: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    padding: usize,
    out_c: usize,
}

enum ExecOp {
    Conv(ProgrammedMatrix, ConvMeta),
    Linear(ProgrammedMatrix),
    Relu,
    MaxPool2,
    GlobalAvgPool,
    Flatten,
    ResidualBegin,
    ResidualAdd,
}

/// A frozen network programmed onto crossbars, ready for inference.
pub struct CrossbarNetwork {
    ops: Vec<ExecOp>,
    arch: ArchConfig,
    input_shape: [usize; 3],
    classes: usize,
}

impl CrossbarNetwork {
    /// Programs every conv/linear layer of `spec` onto `engine`-backed
    /// crossbars.
    ///
    /// This is the expensive step (the analytical backend runs its
    /// unit solves here, the GENIEx backend its weight splits); once
    /// built, inference reuses the programmed state.
    ///
    /// # Errors
    ///
    /// * [`FuncsimError::InvalidConfig`] for invalid `arch`.
    /// * Programming failures from the engine.
    pub fn build(
        spec: NetworkSpec,
        arch: &ArchConfig,
        engine: &dyn CrossbarEngine,
    ) -> Result<Self, FuncsimError> {
        arch.validate()?;
        let _span = telemetry::span("funcsim.build");
        let mut ops = Vec::with_capacity(spec.ops.len());
        for (op_index, op) in spec.ops.iter().enumerate() {
            ops.push(match op {
                SpecOp::Conv2d {
                    weight,
                    bias,
                    stride,
                    padding,
                } => {
                    let [oc, ic, kh, kw] = *<&[usize; 4]>::try_from(weight.shape())
                        .map_err(|_| FuncsimError::Shape("conv weight rank".into()))?;
                    let w_mat = weight.reshape(&[oc, ic * kh * kw])?;
                    let pm = ProgrammedMatrix::program_labeled(
                        engine,
                        arch,
                        &w_mat,
                        bias,
                        Some(&format!("conv{op_index}")),
                    )?;
                    ExecOp::Conv(
                        pm,
                        ConvMeta {
                            in_c: ic,
                            kh,
                            kw,
                            stride: *stride,
                            padding: *padding,
                            out_c: oc,
                        },
                    )
                }
                SpecOp::Linear { weight, bias } => {
                    ExecOp::Linear(ProgrammedMatrix::program_labeled(
                        engine,
                        arch,
                        weight,
                        bias,
                        Some(&format!("linear{op_index}")),
                    )?)
                }
                SpecOp::Relu => ExecOp::Relu,
                SpecOp::MaxPool2 => ExecOp::MaxPool2,
                SpecOp::GlobalAvgPool => ExecOp::GlobalAvgPool,
                SpecOp::Flatten => ExecOp::Flatten,
                SpecOp::ResidualBegin => ExecOp::ResidualBegin,
                SpecOp::ResidualAdd => ExecOp::ResidualAdd,
            });
        }
        Ok(CrossbarNetwork {
            ops,
            arch: arch.clone(),
            input_shape: spec.input_shape,
            classes: spec.classes,
        })
    }

    /// The architecture this network was programmed with.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Runs inference on a batch of images `[batch, c, h, w]`,
    /// returning logits `[batch, classes]`.
    ///
    /// # Errors
    ///
    /// * [`FuncsimError::Shape`] if the image shape does not match the
    ///   spec.
    /// * Backend failures from the crossbar engines.
    pub fn forward(&self, images: &Tensor) -> Result<Tensor, FuncsimError> {
        let [c, h, w] = self.input_shape;
        if images.shape().len() != 4
            || images.shape()[1] != c
            || images.shape()[2] != h
            || images.shape()[3] != w
        {
            return Err(FuncsimError::Shape(format!(
                "images {:?} for input shape [{c}, {h}, {w}]",
                images.shape()
            )));
        }
        let _span = telemetry::span("funcsim.forward");
        let fmt = self.arch.input_format;
        let mut x = images.map(|v| fmt.round_trip(v));
        let mut residual_stack: Vec<Tensor> = Vec::new();

        for op in &self.ops {
            x = match op {
                ExecOp::Conv(pm, meta) => conv_mvm(pm, meta, &x, &self.arch)?,
                ExecOp::Linear(pm) => linear_mvm(pm, &x, &self.arch)?,
                ExecOp::Relu => x.map(|v| v.max(0.0)),
                ExecOp::MaxPool2 => max_pool2(&x)?,
                ExecOp::GlobalAvgPool => {
                    let pooled = global_avg_pool(&x)?;
                    pooled.map(|v| fmt.round_trip(v))
                }
                ExecOp::Flatten => {
                    let batch = x.shape()[0];
                    let rest: usize = x.shape()[1..].iter().product();
                    x.reshape(&[batch, rest])?
                }
                ExecOp::ResidualBegin => {
                    residual_stack.push(x.clone());
                    x
                }
                ExecOp::ResidualAdd => {
                    let saved = residual_stack.pop().ok_or_else(|| {
                        FuncsimError::InvalidConfig("ResidualAdd without ResidualBegin".into())
                    })?;
                    x.add(&saved)?.map(|v| fmt.round_trip(v))
                }
            };
        }
        Ok(x)
    }
}

impl std::fmt::Debug for CrossbarNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrossbarNetwork")
            .field("ops", &self.ops.len())
            .field("input_shape", &self.input_shape)
            .field("classes", &self.classes)
            .finish()
    }
}

/// Convolution as repeated MVM: quantize, im2col, batched crossbar
/// MVM, reshape back to NCHW.
fn conv_mvm(
    pm: &ProgrammedMatrix,
    meta: &ConvMeta,
    x: &Tensor,
    arch: &ArchConfig,
) -> Result<Tensor, FuncsimError> {
    let [batch, c, h, w] = *<&[usize; 4]>::try_from(x.shape()).map_err(|_| {
        FuncsimError::Shape(format!("conv input must be NCHW, got {:?}", x.shape()))
    })?;
    if c != meta.in_c {
        return Err(FuncsimError::Shape(format!(
            "conv expects {} channels, got {c}",
            meta.in_c
        )));
    }
    let out_h = (h + 2 * meta.padding - meta.kh) / meta.stride + 1;
    let out_w = (w + 2 * meta.padding - meta.kw) / meta.stride + 1;
    let fan_in = meta.in_c * meta.kh * meta.kw;
    let fmt = arch.input_format;

    // Quantize the whole activation tensor once.
    let codes: Vec<i64> = x.data().iter().map(|&v| fmt.quantize(v)).collect();

    // im2col in code space: one row per (batch, output position).
    let n = batch * out_h * out_w;
    let mut patches = vec![0i64; n * fan_in];
    for b in 0..batch {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let row_idx = (b * out_h + oy) * out_w + ox;
                let row = &mut patches[row_idx * fan_in..(row_idx + 1) * fan_in];
                let mut col = 0usize;
                for ci in 0..c {
                    for ky in 0..meta.kh {
                        let iy = (oy * meta.stride + ky) as isize - meta.padding as isize;
                        for kx in 0..meta.kw {
                            let ix = (ox * meta.stride + kx) as isize - meta.padding as isize;
                            if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                row[col] =
                                    codes[((b * c + ci) * h + iy as usize) * w + ix as usize];
                            }
                            col += 1;
                        }
                    }
                }
            }
        }
    }

    let out_codes = pm.mvm_codes(&patches, n)?;

    // [n, oc] -> [batch, oc, out_h, out_w], dequantized.
    let mut out = Tensor::zeros(&[batch, meta.out_c, out_h, out_w]);
    let od = out.data_mut();
    for b in 0..batch {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let row_idx = (b * out_h + oy) * out_w + ox;
                for oc in 0..meta.out_c {
                    od[((b * meta.out_c + oc) * out_h + oy) * out_w + ox] =
                        fmt.dequantize(out_codes[row_idx * meta.out_c + oc]);
                }
            }
        }
    }
    Ok(out)
}

/// Fully-connected layer as a single batched MVM.
fn linear_mvm(
    pm: &ProgrammedMatrix,
    x: &Tensor,
    arch: &ArchConfig,
) -> Result<Tensor, FuncsimError> {
    let [batch, features] = *<&[usize; 2]>::try_from(x.shape()).map_err(|_| {
        FuncsimError::Shape(format!(
            "linear input must be [batch, k], got {:?}",
            x.shape()
        ))
    })?;
    if features != pm.k() {
        return Err(FuncsimError::Shape(format!(
            "linear expects {} features, got {features}",
            pm.k()
        )));
    }
    let fmt = arch.input_format;
    let codes: Vec<i64> = x.data().iter().map(|&v| fmt.quantize(v)).collect();
    let out_codes = pm.mvm_codes(&codes, batch)?;
    let data = out_codes.iter().map(|&c| fmt.dequantize(c)).collect();
    Ok(Tensor::from_vec(data, &[batch, pm.m()])?)
}

fn max_pool2(x: &Tensor) -> Result<Tensor, FuncsimError> {
    let [batch, c, h, w] = *<&[usize; 4]>::try_from(x.shape()).map_err(|_| {
        FuncsimError::Shape(format!("maxpool input must be NCHW, got {:?}", x.shape()))
    })?;
    if h % 2 != 0 || w % 2 != 0 {
        return Err(FuncsimError::Shape(format!(
            "maxpool2 needs even spatial dims, got {h}x{w}"
        )));
    }
    let (oh, ow) = (h / 2, w / 2);
    let mut out = Tensor::zeros(&[batch, c, oh, ow]);
    let id = x.data();
    let od = out.data_mut();
    for bc in 0..batch * c {
        let in_base = bc * h * w;
        let out_base = bc * oh * ow;
        for oy in 0..oh {
            for ox in 0..ow {
                let i0 = in_base + 2 * oy * w + 2 * ox;
                let m = id[i0].max(id[i0 + 1]).max(id[i0 + w]).max(id[i0 + w + 1]);
                od[out_base + oy * ow + ox] = m;
            }
        }
    }
    Ok(out)
}

fn global_avg_pool(x: &Tensor) -> Result<Tensor, FuncsimError> {
    let [batch, c, h, w] = *<&[usize; 4]>::try_from(x.shape())
        .map_err(|_| FuncsimError::Shape(format!("gap input must be NCHW, got {:?}", x.shape())))?;
    let mut out = Tensor::zeros(&[batch, c]);
    let scale = 1.0 / (h * w) as f32;
    let id = x.data();
    let od = out.data_mut();
    for bc in 0..batch * c {
        od[bc] = id[bc * h * w..(bc + 1) * h * w].iter().sum::<f32>() * scale;
    }
    Ok(out)
}

/// Builds a crossbar network and measures its top-1 accuracy on a
/// dataset — the end-to-end experiment primitive behind Figs. 7–9.
///
/// # Errors
///
/// Propagates build, inference, and dataset failures.
pub fn evaluate_spec(
    spec: NetworkSpec,
    arch: &ArchConfig,
    engine: &dyn CrossbarEngine,
    data: &SynthVision,
    batch_size: usize,
) -> Result<f64, FuncsimError> {
    if batch_size == 0 {
        return Err(FuncsimError::InvalidConfig("batch_size must be > 0".into()));
    }
    let net = CrossbarNetwork::build(spec, arch, engine)?;
    let indices: Vec<usize> = (0..data.len()).collect();
    let mut correct = 0usize;
    for chunk in indices.chunks(batch_size) {
        let (images, labels) = data.batch(chunk)?;
        let logits = net.forward(&images)?;
        let classes = net.classes();
        for (b, &label) in labels.iter().enumerate() {
            let row = &logits.data()[b * classes..(b + 1) * classes];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(i, _)| i)
                .expect("non-empty logits");
            if pred == label {
                correct += 1;
            }
        }
    }
    Ok(correct as f64 / data.len().max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::IdealEngine;
    use vision::{spec_forward, MicroResNet, SynthSpec};
    use xbar::CrossbarParams;

    fn test_arch() -> ArchConfig {
        // Small crossbar + generous ADC: the ideal backend then tracks
        // plain fixed-point arithmetic closely.
        ArchConfig {
            adc_bits: 20,
            xbar: CrossbarParams::builder(16, 16).build().unwrap(),
            ..ArchConfig::default()
        }
    }

    #[test]
    fn ideal_crossbar_network_tracks_fp32_reference() {
        let model = MicroResNet::new(SynthSpec::SynthS, 21);
        let spec = model.to_spec();
        let data = SynthVision::generate(SynthSpec::SynthS, 2, 3).unwrap();
        let (images, _) = data.batch(&[0, 1, 2, 3]).unwrap();

        let fp32 = spec_forward(&spec, &images).unwrap();
        let net = CrossbarNetwork::build(spec, &test_arch(), &IdealEngine).unwrap();
        let fxp = net.forward(&images).unwrap();

        assert_eq!(fp32.shape(), fxp.shape());
        let scale = fp32.max_abs().max(1e-3);
        for (a, b) in fp32.data().iter().zip(fxp.data()) {
            assert!(
                (a - b).abs() < 0.05 * scale + 0.02,
                "fp32 {a} vs crossbar {b}"
            );
        }
    }

    #[test]
    fn ideal_crossbar_preserves_argmax_on_most_inputs() {
        let model = MicroResNet::new(SynthSpec::SynthS, 9);
        let spec = model.to_spec();
        let data = SynthVision::generate(SynthSpec::SynthS, 2, 7).unwrap();
        let (images, _) = data.full_batch().unwrap();

        let fp32 = spec_forward(&spec, &images).unwrap();
        let net = CrossbarNetwork::build(spec, &test_arch(), &IdealEngine).unwrap();
        let fxp = net.forward(&images).unwrap();
        let classes = 8;
        let mut agree = 0;
        let n = images.shape()[0];
        for b in 0..n {
            let argmax = |t: &Tensor| {
                t.data()[b * classes..(b + 1) * classes]
                    .iter()
                    .enumerate()
                    .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap()
            };
            if argmax(&fp32) == argmax(&fxp) {
                agree += 1;
            }
        }
        assert!(agree * 10 >= n * 8, "only {agree}/{n} argmax agreements");
    }

    #[test]
    fn forward_validates_image_shape() {
        let model = MicroResNet::new(SynthSpec::SynthS, 1);
        let net = CrossbarNetwork::build(model.to_spec(), &test_arch(), &IdealEngine).unwrap();
        assert!(net.forward(&Tensor::zeros(&[1, 3, 12, 12])).is_err());
        assert!(net.forward(&Tensor::zeros(&[1, 1, 12])).is_err());
    }

    #[test]
    fn evaluate_spec_runs_end_to_end() {
        let model = MicroResNet::new(SynthSpec::SynthS, 5);
        let data = SynthVision::generate(SynthSpec::SynthS, 1, 11).unwrap();
        let acc = evaluate_spec(model.to_spec(), &test_arch(), &IdealEngine, &data, 4).unwrap();
        assert!((0.0..=1.0).contains(&acc));
        assert!(evaluate_spec(
            MicroResNet::new(SynthSpec::SynthS, 5).to_spec(),
            &test_arch(),
            &IdealEngine,
            &data,
            0
        )
        .is_err());
    }

    #[test]
    fn pooling_helpers() {
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, -1.0, -2.0, -3.0, -4.0],
            &[1, 2, 2, 2],
        )
        .unwrap();
        let mp = max_pool2(&x).unwrap();
        assert_eq!(mp.shape(), &[1, 2, 1, 1]);
        assert_eq!(mp.data(), &[4.0, -1.0]);
        let gap = global_avg_pool(&x).unwrap();
        assert_eq!(gap.data(), &[2.5, -2.5]);
        assert!(max_pool2(&Tensor::zeros(&[1, 1, 3, 3])).is_err());
    }
}

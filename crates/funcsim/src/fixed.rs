//! Signed fixed-point formats and conversions.
//!
//! All networks in the evaluation use fixed-point (FxP) representations
//! (Section 6). A format is `total_bits` two's-complement bits with
//! `frac_bits` fractional bits; quantization rounds to nearest and
//! saturates.

use crate::FuncsimError;

/// A signed fixed-point format.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), funcsim::FuncsimError> {
/// use funcsim::FxpFormat;
/// let fmt = FxpFormat::new(16, 13)?;
/// let q = fmt.quantize(0.5);
/// assert_eq!(q, 4096); // 0.5 * 2^13
/// assert_eq!(fmt.dequantize(q), 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FxpFormat {
    total_bits: u32,
    frac_bits: u32,
}

impl FxpFormat {
    /// Creates a format with `total_bits` total (including sign) and
    /// `frac_bits` fractional bits.
    ///
    /// # Errors
    ///
    /// Returns [`FuncsimError::InvalidConfig`] unless
    /// `1 <= total_bits <= 62` and `frac_bits < total_bits`.
    pub fn new(total_bits: u32, frac_bits: u32) -> Result<Self, FuncsimError> {
        if total_bits == 0 || total_bits > 62 {
            return Err(FuncsimError::InvalidConfig(format!(
                "total_bits must be in 1..=62, got {total_bits}"
            )));
        }
        if frac_bits >= total_bits {
            return Err(FuncsimError::InvalidConfig(format!(
                "frac_bits ({frac_bits}) must be below total_bits ({total_bits})"
            )));
        }
        Ok(FxpFormat {
            total_bits,
            frac_bits,
        })
    }

    /// The paper's activation/weight default: 16-bit, 13 fractional.
    pub fn paper_default() -> Self {
        FxpFormat {
            total_bits: 16,
            frac_bits: 13,
        }
    }

    /// A reduced-precision variant keeping the paper's 3 integer bits:
    /// `bits` total, `bits - 3` fractional (e.g. 8-bit → 5 fractional).
    ///
    /// # Errors
    ///
    /// Returns [`FuncsimError::InvalidConfig`] for `bits < 4`.
    pub fn with_total_bits(bits: u32) -> Result<Self, FuncsimError> {
        if bits < 4 {
            return Err(FuncsimError::InvalidConfig(format!(
                "need at least 4 bits for sign + 3 integer bits, got {bits}"
            )));
        }
        FxpFormat::new(bits, bits - 3)
    }

    /// Total bit width.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Fractional bit count.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Largest representable code.
    pub fn max_code(&self) -> i64 {
        (1i64 << (self.total_bits - 1)) - 1
    }

    /// Smallest representable code.
    pub fn min_code(&self) -> i64 {
        -(1i64 << (self.total_bits - 1))
    }

    /// Magnitude bits available for unsigned slicing (excludes sign).
    pub fn magnitude_bits(&self) -> u32 {
        self.total_bits - 1
    }

    /// Quantizes a real value: round to nearest, saturate.
    pub fn quantize(&self, value: f32) -> i64 {
        let scaled = (value as f64 * (1i64 << self.frac_bits) as f64).round();
        if scaled.is_nan() {
            return 0;
        }
        (scaled as i64).clamp(self.min_code(), self.max_code())
    }

    /// Converts a code back to a real value.
    pub fn dequantize(&self, code: i64) -> f32 {
        (code as f64 / (1i64 << self.frac_bits) as f64) as f32
    }

    /// Quantize-dequantize round trip (the value the hardware sees).
    pub fn round_trip(&self, value: f32) -> f32 {
        self.dequantize(self.quantize(value))
    }
}

/// Rescales a fixed-point value from `from_frac` fractional bits to
/// `to_frac`, rounding on right shifts, then saturates to
/// `total_bits`.
///
/// This is the shift-and-add pipeline's requantization step (product →
/// accumulator → activation).
pub fn rescale_saturate(value: i64, from_frac: u32, to_frac: u32, total_bits: u32) -> i64 {
    let shifted = if from_frac > to_frac {
        let shift = from_frac - to_frac;
        // Round to nearest (ties away from zero) instead of floor.
        let half = 1i64 << (shift - 1);
        if value >= 0 {
            (value + half) >> shift
        } else {
            -((-value + half) >> shift)
        }
    } else {
        value << (to_frac - from_frac)
    };
    let max = (1i64 << (total_bits - 1)) - 1;
    let min = -(1i64 << (total_bits - 1));
    shifted.clamp(min, max)
}

/// Splits an unsigned magnitude into `count` digits of `width` bits,
/// least-significant first. Digits beyond the value's length are zero.
///
/// This implements both weight *slices* and input *streams*.
pub fn split_digits(magnitude: u64, width: u32, count: u32) -> Vec<u64> {
    debug_assert!((1..=16).contains(&width));
    let mask = (1u64 << width) - 1;
    (0..count)
        .map(|k| (magnitude >> (k * width)) & mask)
        .collect()
}

/// Number of `width`-bit digits needed to cover `bits` magnitude bits.
pub fn digit_count(bits: u32, width: u32) -> u32 {
    bits.div_ceil(width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn format_validation() {
        assert!(FxpFormat::new(0, 0).is_err());
        assert!(FxpFormat::new(63, 2).is_err());
        assert!(FxpFormat::new(8, 8).is_err());
        assert!(FxpFormat::new(8, 9).is_err());
        assert!(FxpFormat::new(8, 7).is_ok());
        assert!(FxpFormat::with_total_bits(3).is_err());
    }

    #[test]
    fn paper_default_format() {
        let f = FxpFormat::paper_default();
        assert_eq!(f.total_bits(), 16);
        assert_eq!(f.frac_bits(), 13);
        assert_eq!(f.magnitude_bits(), 15);
        assert_eq!(FxpFormat::with_total_bits(8).unwrap().frac_bits(), 5);
        assert_eq!(FxpFormat::with_total_bits(4).unwrap().frac_bits(), 1);
    }

    #[test]
    fn quantize_known_values() {
        let f = FxpFormat::paper_default();
        assert_eq!(f.quantize(0.0), 0);
        assert_eq!(f.quantize(1.0), 8192);
        assert_eq!(f.quantize(-1.0), -8192);
        // Saturation at ±4 (3 integer bits).
        assert_eq!(f.quantize(100.0), f.max_code());
        assert_eq!(f.quantize(-100.0), f.min_code());
        assert_eq!(f.quantize(f32::NAN), 0);
    }

    #[test]
    fn round_trip_error_bounded_by_lsb() {
        let f = FxpFormat::paper_default();
        let lsb = 1.0 / (1 << 13) as f32;
        for v in [0.1f32, -0.7, 3.99, 0.333_333] {
            assert!((f.round_trip(v) - v).abs() <= lsb);
        }
    }

    #[test]
    fn rescale_rounds_and_saturates() {
        // 26 -> 24 frac: shift right 2 with rounding.
        assert_eq!(rescale_saturate(7, 26, 24, 32), 2);
        assert_eq!(rescale_saturate(-7, 26, 24, 32), -2);
        assert_eq!(rescale_saturate(6, 26, 24, 32), 2);
        // Left shift.
        assert_eq!(rescale_saturate(3, 10, 12, 32), 12);
        // Saturation.
        assert_eq!(rescale_saturate(1 << 40, 0, 0, 16), (1 << 15) - 1);
        assert_eq!(rescale_saturate(-(1 << 40), 0, 0, 16), -(1 << 15));
    }

    #[test]
    fn split_digits_lsb_first() {
        // 0xABC in 4-bit digits.
        assert_eq!(split_digits(0xABC, 4, 3), vec![0xC, 0xB, 0xA]);
        assert_eq!(split_digits(0xABC, 4, 5), vec![0xC, 0xB, 0xA, 0, 0]);
        assert_eq!(split_digits(0b101, 1, 3), vec![1, 0, 1]);
        assert_eq!(digit_count(15, 4), 4);
        assert_eq!(digit_count(16, 4), 4);
        assert_eq!(digit_count(13, 4), 4);
        assert_eq!(digit_count(15, 1), 15);
    }

    proptest! {
        #[test]
        fn digits_reassemble(value in 0u64..(1 << 15), width in 1u32..8) {
            let count = digit_count(15, width);
            let digits = split_digits(value, width, count);
            let mut back = 0u64;
            for (k, &d) in digits.iter().enumerate() {
                back |= d << (k as u32 * width);
            }
            prop_assert_eq!(back, value);
        }

        #[test]
        fn quantize_monotonic(a in -5.0f32..5.0, b in -5.0f32..5.0) {
            let f = FxpFormat::paper_default();
            if a <= b {
                prop_assert!(f.quantize(a) <= f.quantize(b));
            }
        }

        #[test]
        fn rescale_round_trip_up_down(v in -100_000i64..100_000) {
            // Shifting up then back down must be exact.
            let up = rescale_saturate(v, 10, 20, 40);
            let back = rescale_saturate(up, 20, 10, 40);
            prop_assert_eq!(back, v);
        }
    }
}

//! A fixed-point weight matrix programmed onto tiled, bit-sliced
//! crossbars — phases 2 and 3 of the paper's functional simulator.
//!
//! # Digital ↔ analog contract
//!
//! Input codes are split into sign parts and `stream_width`-bit digits
//! (LSB first); weight codes into `slice_width`-bit slices. Each
//! (tile, slice, sign, stream) step drives one analog crossbar
//! operation through a [`ProgrammedXbar`]: digits map to DAC levels
//! `d / d_max`, slices were mapped at programming time to conductance
//! levels `w / w_max` between `g_off` and `g_on`.
//!
//! The ADC digitizes the bit-line current against the crossbar's
//! full-scale `I_max = rows · V_supply · g_on`; the digital back end
//! then removes the `g_off` pedestal (every cell conducts at least
//! `g_off`, so the ideal current contains `(Σ d_i) · g_off · V/d_max`
//! — a term computable exactly in digital) and rescales to recover the
//! digit dot product `Σ d_i · w_ij`. Shift-and-add merges digits into
//! the saturating accumulator; a final requantization produces output
//! activation codes.

use crate::arch::{ArchConfig, WeightMapping};
use crate::engine::{CrossbarEngine, ProgrammedXbar};
use crate::fixed::{digit_count, rescale_saturate, split_digits};
use crate::FuncsimError;
use nn::Tensor;
use std::sync::{Arc, OnceLock};

/// Stack-wide funcsim metrics, resolved once.
struct SharedMetrics {
    mvm_calls: Arc<telemetry::Counter>,
    mvm_vectors: Arc<telemetry::Counter>,
    batch_size: Arc<telemetry::Histogram>,
    tile_ops: Arc<telemetry::Counter>,
    adc_saturations: Arc<telemetry::Counter>,
    adc_clips: Arc<telemetry::Counter>,
}

fn shared_metrics() -> &'static SharedMetrics {
    static METRICS: OnceLock<SharedMetrics> = OnceLock::new();
    METRICS.get_or_init(|| SharedMetrics {
        mvm_calls: telemetry::counter("funcsim.mvm_calls"),
        mvm_vectors: telemetry::counter("funcsim.mvm_vectors"),
        batch_size: telemetry::histogram(
            "funcsim.batch_size",
            &telemetry::exponential_buckets(1.0, 2.0, 12),
        ),
        tile_ops: telemetry::counter("funcsim.tile_ops"),
        adc_saturations: telemetry::counter("funcsim.adc.saturations"),
        adc_clips: telemetry::counter("funcsim.adc.count_clips"),
    })
}

/// Per-matrix handles: engine-specific op timing plus the optional
/// per-layer MVM counter for labeled layers.
struct MatrixMetrics {
    engine_ops: Arc<telemetry::Counter>,
    engine_time: Arc<telemetry::Timer>,
    layer_mvms: Option<Arc<telemetry::Counter>>,
}

impl MatrixMetrics {
    fn new(engine_name: &str, label: Option<&str>) -> Self {
        MatrixMetrics {
            engine_ops: telemetry::counter(&format!("funcsim.engine.{engine_name}.ops")),
            engine_time: telemetry::timer(&format!("funcsim.engine.{engine_name}.seconds")),
            layer_mvms: label.map(|l| telemetry::counter(&format!("funcsim.layer.{l}.mvms"))),
        }
    }
}

/// A weight matrix (`m` outputs × `k` inputs) programmed onto
/// crossbars, together with its bias, ready to evaluate fixed-point
/// MVMs.
pub struct ProgrammedMatrix {
    arch: ArchConfig,
    k: usize,
    m: usize,
    tile_rows: usize,
    tile_cols: usize,
    slice_count: u32,
    weight_signs: usize,
    /// Flat `[tile_r][tile_c][slice][sign]` order.
    tiles: Vec<Box<dyn ProgrammedXbar>>,
    /// Bias codes at product precision (input_frac + weight_frac).
    bias_codes: Vec<i64>,
    /// `Offset` mapping: the constant added to every weight code.
    offset_code: i64,
    metrics: MatrixMetrics,
}

impl ProgrammedMatrix {
    /// Quantizes `weight` (`[m, k]`) and `bias` (`[m]`) and programs
    /// them onto `engine`-backed crossbars.
    ///
    /// # Errors
    ///
    /// * [`FuncsimError::InvalidConfig`] for invalid `arch`.
    /// * [`FuncsimError::Shape`] if `weight` is not rank-2 or `bias`
    ///   does not match its output dimension.
    /// * Programming failures from the engine.
    pub fn program(
        engine: &dyn CrossbarEngine,
        arch: &ArchConfig,
        weight: &Tensor,
        bias: &Tensor,
    ) -> Result<Self, FuncsimError> {
        Self::program_labeled(engine, arch, weight, bias, None)
    }

    /// Like [`ProgrammedMatrix::program`] with a telemetry layer label:
    /// MVM counts then also accumulate under
    /// `funcsim.layer.<label>.mvms`, so per-layer activity shows up in
    /// reports and run manifests.
    ///
    /// # Errors
    ///
    /// Same as [`ProgrammedMatrix::program`].
    pub fn program_labeled(
        engine: &dyn CrossbarEngine,
        arch: &ArchConfig,
        weight: &Tensor,
        bias: &Tensor,
        label: Option<&str>,
    ) -> Result<Self, FuncsimError> {
        arch.validate()?;
        if weight.shape().len() != 2 {
            return Err(FuncsimError::Shape(format!(
                "weight must be [m, k], got {:?}",
                weight.shape()
            )));
        }
        let (m, k) = (weight.shape()[0], weight.shape()[1]);
        if bias.shape() != [m] {
            return Err(FuncsimError::Shape(format!(
                "bias shape {:?} for {m} outputs",
                bias.shape()
            )));
        }

        let size = arch.xbar.rows;
        let tile_rows = k.div_ceil(size);
        let tile_cols = m.div_ceil(size);

        let wf = arch.weight_format;
        let (weight_signs, weight_bits, offset_code) = match arch.weight_mapping {
            WeightMapping::Differential => (2usize, wf.magnitude_bits(), 0i64),
            WeightMapping::Offset => (1usize, wf.total_bits(), 1i64 << (wf.total_bits() - 1)),
        };
        let slice_count = digit_count(weight_bits, arch.slice_width);
        let w_max = (1u64 << arch.slice_width) - 1;

        // Quantize all weights once.
        let codes: Vec<i64> = weight.data().iter().map(|&w| wf.quantize(w)).collect();

        let mut tiles: Vec<Box<dyn ProgrammedXbar>> =
            Vec::with_capacity(tile_rows * tile_cols * slice_count as usize * weight_signs);
        let mut g_levels = vec![0.0f32; size * size];
        for tr in 0..tile_rows {
            for tc in 0..tile_cols {
                for s in 0..slice_count {
                    for sign in 0..weight_signs {
                        g_levels.fill(0.0);
                        for i in 0..size {
                            let krow = tr * size + i;
                            if krow >= k {
                                break;
                            }
                            for j in 0..size {
                                let mcol = tc * size + j;
                                if mcol >= m {
                                    break;
                                }
                                let code = codes[mcol * k + krow];
                                let magnitude = match arch.weight_mapping {
                                    WeightMapping::Differential => {
                                        if sign == 0 {
                                            code.max(0) as u64
                                        } else {
                                            (-code).max(0) as u64
                                        }
                                    }
                                    WeightMapping::Offset => (code + offset_code) as u64,
                                };
                                let digit = split_digits(magnitude, arch.slice_width, slice_count)
                                    [s as usize];
                                g_levels[i * size + j] = digit as f32 / w_max as f32;
                            }
                        }
                        // Offset mapping: padded rows must also hold the
                        // "zero weight" (= offset) pattern so unused
                        // devices don't read as g_off. They see 0 V, so
                        // this only matters for IR-drop realism.
                        if matches!(arch.weight_mapping, WeightMapping::Offset) {
                            let offset_digit =
                                split_digits(offset_code as u64, arch.slice_width, slice_count)
                                    [s as usize];
                            let pad_level = offset_digit as f32 / w_max as f32;
                            for i in 0..size {
                                let krow = tr * size + i;
                                for j in 0..size {
                                    let mcol = tc * size + j;
                                    if krow >= k || mcol >= m {
                                        g_levels[i * size + j] = pad_level;
                                    }
                                }
                            }
                        }
                        tiles.push(engine.program(&arch.xbar, &g_levels)?);
                    }
                }
            }
        }

        // Bias at product precision.
        let product_frac = arch.input_format.frac_bits() + wf.frac_bits();
        let bias_codes = bias
            .data()
            .iter()
            .map(|&b| (b as f64 * (1i64 << product_frac) as f64).round() as i64)
            .collect();

        Ok(ProgrammedMatrix {
            arch: arch.clone(),
            k,
            m,
            tile_rows,
            tile_cols,
            slice_count,
            weight_signs,
            tiles,
            bias_codes,
            offset_code,
            metrics: MatrixMetrics::new(engine.name(), label),
        })
    }

    /// Input dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output dimension.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total number of programmed crossbar tiles (including slices and
    /// sign copies).
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    #[inline]
    fn tile(&self, tr: usize, tc: usize, slice: u32, sign: usize) -> &dyn ProgrammedXbar {
        let idx = ((tr * self.tile_cols + tc) * self.slice_count as usize + slice as usize)
            * self.weight_signs
            + sign;
        self.tiles[idx].as_ref()
    }

    /// Converts one batch of bit-line currents to recovered digit
    /// dot-products, modelling the ADC.
    fn adc_to_counts(&self, currents: &[f64], d_sums: &[u64], counts: &mut [i64]) {
        let arch = &self.arch;
        let size = arch.xbar.rows;
        let v_supply = arch.xbar.v_supply;
        let g_on = arch.xbar.g_on();
        let g_off = arch.xbar.g_off();
        let d_max = ((1u64 << arch.stream_width) - 1) as f64;
        let w_max = ((1u64 << arch.slice_width) - 1) as f64;
        let i_max = size as f64 * v_supply * g_on;
        let adc_levels = ((1u64 << arch.adc_bits) - 1) as f64;
        let lsb = i_max / adc_levels;
        let count_unit = (v_supply / d_max) * (g_on - g_off) / w_max;
        let max_count = (size as f64 * d_max * w_max) as i64;

        // Saturation/clip tallies stay in locals so the hot loop pays
        // nothing extra while telemetry is disabled.
        let telemetry_on = telemetry::enabled();
        let mut saturations = 0u64;
        let mut clips = 0u64;
        for (b, chunk) in currents.chunks(size).enumerate() {
            let pedestal = g_off * (v_supply / d_max) * d_sums[b] as f64;
            let out = &mut counts[b * size..(b + 1) * size];
            for (j, &i_raw) in chunk.iter().enumerate() {
                // ADC: clamp to full scale, quantize to the LSB grid.
                let i_adc = (i_raw.clamp(0.0, i_max) / lsb).round() * lsb;
                let count = ((i_adc - pedestal) / count_unit).round() as i64;
                if telemetry_on {
                    saturations += u64::from(!(0.0..=i_max).contains(&i_raw));
                    clips += u64::from(count < -max_count || count > max_count);
                }
                out[j] = count.clamp(-max_count, max_count);
            }
        }
        if telemetry_on {
            let m = shared_metrics();
            m.adc_saturations.add(saturations);
            m.adc_clips.add(clips);
        }
    }

    /// Evaluates the MVM for `n` input-activation code vectors
    /// (row-major `n × k`, codes in the input format), producing output
    /// activation codes (row-major `n × m`).
    ///
    /// # Errors
    ///
    /// Returns [`FuncsimError::Shape`] on length mismatch and
    /// propagates backend failures.
    pub fn mvm_codes(&self, x_codes: &[i64], n: usize) -> Result<Vec<i64>, FuncsimError> {
        if x_codes.len() != n * self.k {
            return Err(FuncsimError::Shape(format!(
                "{} input codes for {n} vectors of length {}",
                x_codes.len(),
                self.k
            )));
        }
        if telemetry::enabled() {
            let m = shared_metrics();
            m.mvm_calls.inc();
            m.mvm_vectors.add(n as u64);
            m.batch_size.observe(n as f64);
            if let Some(layer) = &self.metrics.layer_mvms {
                layer.add(n as u64);
            }
        }
        // Raw trace scopes (gated on trace_active before building the
        // attribute vectors) keep the hot loop allocation-free while
        // tracing is off — same discipline as the metrics handles.
        let tracing = telemetry::trace_active();
        let _mvm_trace = tracing.then(|| {
            telemetry::trace_scope(
                "funcsim.mvm",
                vec![
                    ("n".to_string(), telemetry::Json::from(n)),
                    ("k".to_string(), telemetry::Json::from(self.k)),
                    ("m".to_string(), telemetry::Json::from(self.m)),
                ],
            )
        });
        let arch = &self.arch;
        let size = arch.xbar.rows;
        let stream_count = digit_count(arch.input_format.magnitude_bits(), arch.stream_width);
        let d_level_max = ((1u64 << arch.stream_width) - 1) as f32;

        // Which input sign parts are present?
        let has_neg = x_codes.iter().any(|&x| x < 0);
        let input_signs: &[i64] = if has_neg { &[1, -1] } else { &[1] };

        // Accumulate at product precision.
        let mut acc = vec![0i64; n * self.m];

        let mut v_levels = vec![0.0f32; n * size];
        let mut d_sums = vec![0u64; n];

        // Every (tile-col, slice, sign) combination within one
        // (sign, tile-row, stream) step reads the same input levels and
        // drives a distinct programmed tile, so the combinations run in
        // parallel; their counts merge into the i64 accumulator in
        // combination order (integer adds are exact, so the result is
        // identical for any GENIEX_THREADS — and any order).
        let combos: Vec<(usize, u32, usize)> = (0..self.tile_cols)
            .flat_map(|tc| {
                (0..self.slice_count)
                    .flat_map(move |s| (0..self.weight_signs).map(move |sign| (tc, s, sign)))
            })
            .collect();

        for &x_sign in input_signs {
            for tr in 0..self.tile_rows {
                let row_base = tr * size;
                let rows_here = size.min(self.k - row_base);
                for t in 0..stream_count {
                    // Build the level matrix for this (sign, tile-row,
                    // stream) and the per-vector digit sums.
                    let shift_t = t * arch.stream_width;
                    let mask = (1u64 << arch.stream_width) - 1;
                    let mut any_nonzero = false;
                    for b in 0..n {
                        let mut dsum = 0u64;
                        let row = &mut v_levels[b * size..(b + 1) * size];
                        row.fill(0.0);
                        for i in 0..rows_here {
                            let code = x_codes[b * self.k + row_base + i];
                            let magnitude = if x_sign > 0 {
                                code.max(0) as u64
                            } else {
                                (-code).max(0) as u64
                            };
                            let digit = (magnitude >> shift_t) & mask;
                            if digit != 0 {
                                row[i] = digit as f32 / d_level_max;
                                dsum += digit;
                                any_nonzero = true;
                            }
                        }
                        d_sums[b] = dsum;
                    }
                    if !any_nonzero {
                        continue;
                    }

                    // One trace span per bit-stream step; the per-tile
                    // spans below nest under the pool's task spans on
                    // whichever worker runs them.
                    let _stream_trace = tracing.then(|| {
                        telemetry::trace_scope(
                            "funcsim.stream",
                            vec![
                                ("sign".to_string(), telemetry::Json::from(x_sign)),
                                ("tile_row".to_string(), telemetry::Json::from(tr)),
                                ("stream".to_string(), telemetry::Json::from(u64::from(t))),
                            ],
                        )
                    });
                    let v_levels_ref = &v_levels;
                    let d_sums_ref = &d_sums;
                    let combo_counts = parallel::par_map_grained(
                        &combos,
                        1,
                        |&(tc, s, sign)| -> Result<Vec<i64>, FuncsimError> {
                            let _tile_trace = telemetry::trace_active().then(|| {
                                telemetry::trace_scope(
                                    "funcsim.tile",
                                    vec![
                                        ("tile_col".to_string(), telemetry::Json::from(tc)),
                                        ("slice".to_string(), telemetry::Json::from(u64::from(s))),
                                        ("sign".to_string(), telemetry::Json::from(sign)),
                                    ],
                                )
                            });
                            let tile = self.tile(tr, tc, s, sign);
                            shared_metrics().tile_ops.inc();
                            self.metrics.engine_ops.inc();
                            let currents = self
                                .metrics
                                .engine_time
                                .time(|| tile.currents_batch(v_levels_ref, n))?;
                            let mut counts = vec![0i64; n * size];
                            self.adc_to_counts(&currents, d_sums_ref, &mut counts);
                            Ok(counts)
                        },
                    );
                    for (&(tc, s, sign), counts) in combos.iter().zip(combo_counts) {
                        let counts = counts?;
                        let col_base = tc * size;
                        let cols_here = size.min(self.m - col_base);
                        let w_sign: i64 = match arch.weight_mapping {
                            WeightMapping::Differential => {
                                if sign == 0 {
                                    1
                                } else {
                                    -1
                                }
                            }
                            WeightMapping::Offset => 1,
                        };
                        let shift = shift_t + s * arch.slice_width;
                        for b in 0..n {
                            let dst = &mut acc[b * self.m + col_base..];
                            let src = &counts[b * size..b * size + cols_here];
                            for (j, &c) in src.iter().enumerate() {
                                dst[j] += x_sign * w_sign * (c << shift);
                            }
                        }
                    }

                    // Offset mapping: subtract the constant-weight
                    // pedestal `offset_code · Σ x_i` (for this tile row
                    // and stream, at this stream's shift).
                    if matches!(arch.weight_mapping, WeightMapping::Offset) {
                        for b in 0..n {
                            let corr = (x_sign * self.offset_code * (d_sums[b] as i64)) << shift_t;
                            for j in 0..self.m {
                                acc[b * self.m + j] -= corr;
                            }
                        }
                    }
                }
            }
        }

        // Bias, accumulator saturation, and output requantization.
        let product_frac = arch.input_format.frac_bits() + arch.weight_format.frac_bits();
        let mut out = vec![0i64; n * self.m];
        for b in 0..n {
            for j in 0..self.m {
                let with_bias = acc[b * self.m + j] + self.bias_codes[j];
                let in_acc = rescale_saturate(
                    with_bias,
                    product_frac,
                    arch.accumulator_frac,
                    arch.accumulator_bits,
                );
                out[b * self.m + j] = rescale_saturate(
                    in_acc,
                    arch.accumulator_frac,
                    arch.input_format.frac_bits(),
                    arch.input_format.total_bits(),
                );
            }
        }
        Ok(out)
    }
}

impl std::fmt::Debug for ProgrammedMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgrammedMatrix")
            .field("k", &self.k)
            .field("m", &self.m)
            .field("tile_rows", &self.tile_rows)
            .field("tile_cols", &self.tile_cols)
            .field("slice_count", &self.slice_count)
            .field("weight_signs", &self.weight_signs)
            .field("tiles", &self.tiles.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::IdealEngine;
    use crate::fixed::FxpFormat;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use xbar::CrossbarParams;

    /// Small-crossbar arch with a generous ADC so the ideal backend is
    /// (nearly) exact digital arithmetic.
    fn small_arch() -> ArchConfig {
        ArchConfig {
            adc_bits: 20,
            xbar: CrossbarParams::builder(8, 8).build().unwrap(),
            ..ArchConfig::default()
        }
    }

    fn reference_mvm(
        weight: &Tensor,
        bias: &Tensor,
        arch: &ArchConfig,
        x_codes: &[i64],
        n: usize,
    ) -> Vec<i64> {
        // Pure-integer reference of the whole fixed-point pipeline,
        // no crossbars involved.
        let (m, k) = (weight.shape()[0], weight.shape()[1]);
        let wf = arch.weight_format;
        let product_frac = arch.input_format.frac_bits() + wf.frac_bits();
        let mut out = vec![0i64; n * m];
        for b in 0..n {
            for j in 0..m {
                let mut acc = 0i64;
                for i in 0..k {
                    acc += x_codes[b * k + i] * wf.quantize(weight.data()[j * k + i]);
                }
                acc += (bias.data()[j] as f64 * (1i64 << product_frac) as f64).round() as i64;
                let in_acc = rescale_saturate(
                    acc,
                    product_frac,
                    arch.accumulator_frac,
                    arch.accumulator_bits,
                );
                out[b * m + j] = rescale_saturate(
                    in_acc,
                    arch.accumulator_frac,
                    arch.input_format.frac_bits(),
                    arch.input_format.total_bits(),
                );
            }
        }
        out
    }

    fn random_case(
        m: usize,
        k: usize,
        n: usize,
        seed: u64,
        signed_inputs: bool,
    ) -> (Tensor, Tensor, Vec<i64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let weight = Tensor::from_vec(
            (0..m * k).map(|_| rng.gen_range(-0.9f32..0.9)).collect(),
            &[m, k],
        )
        .unwrap();
        let bias =
            Tensor::from_vec((0..m).map(|_| rng.gen_range(-0.2f32..0.2)).collect(), &[m]).unwrap();
        let fmt = FxpFormat::paper_default();
        let x: Vec<i64> = (0..n * k)
            .map(|_| {
                let v = if signed_inputs {
                    rng.gen_range(-1.0f32..1.0)
                } else {
                    rng.gen_range(0.0f32..1.0)
                };
                fmt.quantize(v)
            })
            .collect();
        (weight, bias, x)
    }

    #[test]
    fn ideal_backend_matches_integer_reference() {
        let arch = small_arch();
        let (weight, bias, x) = random_case(5, 7, 3, 1, false);
        let pm = ProgrammedMatrix::program(&IdealEngine, &arch, &weight, &bias).unwrap();
        assert_eq!(pm.k(), 7);
        assert_eq!(pm.m(), 5);
        let got = pm.mvm_codes(&x, 3).unwrap();
        let expect = reference_mvm(&weight, &bias, &arch, &x, 3);
        for (g, e) in got.iter().zip(&expect) {
            // ADC rounding leaves at most a few LSBs of error per
            // (stream, slice) pair; with 20-bit ADC it's essentially 0.
            assert!((g - e).abs() <= 2, "got {g} expected {e}");
        }
    }

    #[test]
    fn signed_inputs_match_reference() {
        let arch = small_arch();
        let (weight, bias, x) = random_case(4, 6, 2, 7, true);
        let pm = ProgrammedMatrix::program(&IdealEngine, &arch, &weight, &bias).unwrap();
        let got = pm.mvm_codes(&x, 2).unwrap();
        let expect = reference_mvm(&weight, &bias, &arch, &x, 2);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() <= 2, "got {g} expected {e}");
        }
    }

    #[test]
    fn offset_mapping_matches_reference() {
        let arch = ArchConfig {
            weight_mapping: WeightMapping::Offset,
            ..small_arch()
        };
        let (weight, bias, x) = random_case(4, 6, 2, 9, false);
        let pm = ProgrammedMatrix::program(&IdealEngine, &arch, &weight, &bias).unwrap();
        let got = pm.mvm_codes(&x, 2).unwrap();
        let expect = reference_mvm(&weight, &bias, &arch, &x, 2);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() <= 4, "got {g} expected {e}");
        }
    }

    #[test]
    fn tiling_spans_multiple_tiles() {
        // k=20, m=10 on 8x8 crossbars -> 3x2 tiles.
        let arch = small_arch();
        let (weight, bias, x) = random_case(10, 20, 2, 11, false);
        let pm = ProgrammedMatrix::program(&IdealEngine, &arch, &weight, &bias).unwrap();
        // 3 tile rows * 2 tile cols * 4 slices * 2 signs
        assert_eq!(pm.tile_count(), 3 * 2 * 4 * 2);
        let got = pm.mvm_codes(&x, 2).unwrap();
        let expect = reference_mvm(&weight, &bias, &arch, &x, 2);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() <= 3, "got {g} expected {e}");
        }
    }

    #[test]
    fn one_bit_slicing_matches_reference() {
        let arch = ArchConfig {
            stream_width: 1,
            slice_width: 1,
            ..small_arch()
        };
        let (weight, bias, x) = random_case(3, 5, 2, 13, false);
        let pm = ProgrammedMatrix::program(&IdealEngine, &arch, &weight, &bias).unwrap();
        let got = pm.mvm_codes(&x, 2).unwrap();
        let expect = reference_mvm(&weight, &bias, &arch, &x, 2);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() <= 2, "got {g} expected {e}");
        }
    }

    #[test]
    fn shape_validation() {
        let arch = small_arch();
        let weight = Tensor::zeros(&[3, 4]);
        let bias = Tensor::zeros(&[3]);
        assert!(
            ProgrammedMatrix::program(&IdealEngine, &arch, &Tensor::zeros(&[3]), &bias).is_err()
        );
        assert!(
            ProgrammedMatrix::program(&IdealEngine, &arch, &weight, &Tensor::zeros(&[4])).is_err()
        );
        let pm = ProgrammedMatrix::program(&IdealEngine, &arch, &weight, &bias).unwrap();
        assert!(pm.mvm_codes(&[0; 7], 2).is_err());
    }

    #[test]
    fn adc_resolution_degrades_monotonically() {
        // Coarser ADCs inject more shift-amplified quantization noise;
        // the error relative to the 20-bit reference must grow as the
        // resolution drops.
        let (weight, bias, x) = random_case(4, 8, 2, 17, false);
        let reference = ProgrammedMatrix::program(&IdealEngine, &small_arch(), &weight, &bias)
            .unwrap()
            .mvm_codes(&x, 2)
            .unwrap();
        let noise_at = |bits: u32| -> i64 {
            let arch = ArchConfig {
                adc_bits: bits,
                ..small_arch()
            };
            let out = ProgrammedMatrix::program(&IdealEngine, &arch, &weight, &bias)
                .unwrap()
                .mvm_codes(&x, 2)
                .unwrap();
            out.iter()
                .zip(&reference)
                .map(|(a, b)| (a - b).abs())
                .max()
                .unwrap()
        };
        let n14 = noise_at(14);
        let n10 = noise_at(10);
        let n6 = noise_at(6);
        assert!(n6 > n10, "6-bit {n6} should be noisier than 10-bit {n10}");
        assert!(
            n10 > n14,
            "10-bit {n10} should be noisier than 14-bit {n14}"
        );
    }

    #[test]
    fn zero_inputs_give_bias_only() {
        let arch = small_arch();
        let weight = Tensor::from_vec(vec![0.5; 8], &[2, 4]).unwrap();
        let bias = Tensor::from_vec(vec![0.25, -0.25], &[2]).unwrap();
        let pm = ProgrammedMatrix::program(&IdealEngine, &arch, &weight, &bias).unwrap();
        let out = pm.mvm_codes(&[0; 4], 1).unwrap();
        let fmt = FxpFormat::paper_default();
        assert_eq!(out[0], fmt.quantize(0.25));
        assert_eq!(out[1], fmt.quantize(-0.25));
    }
}

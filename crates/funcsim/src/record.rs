//! Workload stimulus harvesting.
//!
//! The paper's surrogate training set is built from `(V, G)` vectors
//! "collected from the dataset and the pretrained neural network
//! models" (Section 6) — the bit-sliced patterns a real workload
//! actually produces are highly structured (discrete digit levels,
//! extreme sparsity), and a surrogate trained purely on random stimuli
//! generalizes poorly to them.
//!
//! [`RecordingEngine`] wraps any [`CrossbarEngine`] and
//! reservoir-samples the `(tile conductance, input levels)` pairs that
//! flow through it; [`harvest_stimuli`] runs a frozen network over
//! sample images under the ideal backend and returns the collected
//! pairs, ready to be labelled by the circuit simulator
//! (`geniex::dataset::label_stimuli`).

use crate::arch::ArchConfig;
use crate::engine::{CrossbarEngine, IdealEngine, ProgrammedXbar};
use crate::network::CrossbarNetwork;
use crate::FuncsimError;
use nn::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};
use vision::NetworkSpec;
use xbar::CrossbarParams;

/// One harvested crossbar stimulus: the programmed conductance levels
/// of a tile and one input-level vector applied to it.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadStimulus {
    /// Input levels, length `rows`, in `[0, 1]`.
    pub v_levels: Vec<f32>,
    /// Tile conductance levels, length `rows·cols`, in `[0, 1]`.
    pub g_levels: Vec<f32>,
}

struct Reservoir {
    capacity: usize,
    seen: usize,
    rng: StdRng,
    samples: Vec<(usize, Vec<f32>)>,
}

struct LogInner {
    tiles: Vec<Vec<f32>>,
    reservoir: Reservoir,
}

/// Shared log filled by a [`RecordingEngine`].
#[derive(Clone)]
pub struct StimulusLog {
    inner: Arc<Mutex<LogInner>>,
}

impl StimulusLog {
    /// Creates a log keeping at most `capacity` stimuli (uniform
    /// reservoir sample over everything observed).
    pub fn new(capacity: usize, seed: u64) -> Self {
        StimulusLog {
            inner: Arc::new(Mutex::new(LogInner {
                tiles: Vec::new(),
                reservoir: Reservoir {
                    capacity,
                    seen: 0,
                    rng: StdRng::seed_from_u64(seed),
                    samples: Vec::new(),
                },
            })),
        }
    }

    fn register_tile(&self, g_levels: Vec<f32>) -> usize {
        let mut inner = self.inner.lock().expect("stimulus log poisoned");
        inner.tiles.push(g_levels);
        inner.tiles.len() - 1
    }

    fn record(&self, tile: usize, v_levels: &[f32]) {
        let mut inner = self.inner.lock().expect("stimulus log poisoned");
        let r = &mut inner.reservoir;
        r.seen += 1;
        if r.samples.len() < r.capacity {
            r.samples.push((tile, v_levels.to_vec()));
        } else {
            let j = r.rng.gen_range(0..r.seen);
            if j < r.capacity {
                r.samples[j] = (tile, v_levels.to_vec());
            }
        }
    }

    /// Total MVM rows observed (before subsampling).
    pub fn observed(&self) -> usize {
        self.inner
            .lock()
            .expect("stimulus log poisoned")
            .reservoir
            .seen
    }

    /// Extracts the sampled stimuli.
    pub fn stimuli(&self) -> Vec<WorkloadStimulus> {
        let inner = self.inner.lock().expect("stimulus log poisoned");
        inner
            .reservoir
            .samples
            .iter()
            .map(|(tile, v)| WorkloadStimulus {
                v_levels: v.clone(),
                g_levels: inner.tiles[*tile].clone(),
            })
            .collect()
    }
}

/// An engine wrapper that records every programmed tile and
/// reservoir-samples the input vectors applied to them.
pub struct RecordingEngine<E> {
    inner: E,
    log: StimulusLog,
}

impl<E: CrossbarEngine> RecordingEngine<E> {
    /// Wraps `inner`, recording into `log`.
    pub fn new(inner: E, log: StimulusLog) -> Self {
        RecordingEngine { inner, log }
    }
}

struct RecordingXbar {
    inner: Box<dyn ProgrammedXbar>,
    tile: usize,
    rows: usize,
    log: StimulusLog,
}

impl ProgrammedXbar for RecordingXbar {
    fn currents_batch(&self, v_levels: &[f32], n: usize) -> Result<Vec<f64>, FuncsimError> {
        for b in 0..n {
            self.log
                .record(self.tile, &v_levels[b * self.rows..(b + 1) * self.rows]);
        }
        self.inner.currents_batch(v_levels, n)
    }
}

impl<E: CrossbarEngine> CrossbarEngine for RecordingEngine<E> {
    fn name(&self) -> &'static str {
        "recording"
    }

    fn program(
        &self,
        params: &CrossbarParams,
        g_levels: &[f32],
    ) -> Result<Box<dyn ProgrammedXbar>, FuncsimError> {
        let tile = self.log.register_tile(g_levels.to_vec());
        Ok(Box::new(RecordingXbar {
            inner: self.inner.program(params, g_levels)?,
            tile,
            rows: params.rows,
            log: self.log.clone(),
        }))
    }
}

/// Runs `spec` over `images` on the ideal backend and harvests up to
/// `max_samples` workload stimuli (uniformly sampled over all crossbar
/// operations the run performs).
///
/// # Errors
///
/// Propagates build and inference failures.
pub fn harvest_stimuli(
    spec: NetworkSpec,
    arch: &ArchConfig,
    images: &Tensor,
    max_samples: usize,
    seed: u64,
) -> Result<Vec<WorkloadStimulus>, FuncsimError> {
    let log = StimulusLog::new(max_samples, seed);
    let engine = RecordingEngine::new(IdealEngine, log.clone());
    let net = CrossbarNetwork::build(spec, arch, &engine)?;
    net.forward(images)?;
    Ok(log.stimuli())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vision::{MicroResNet, SynthSpec, SynthVision};

    fn arch() -> ArchConfig {
        ArchConfig::default().with_xbar(CrossbarParams::builder(8, 8).build().unwrap())
    }

    #[test]
    fn harvests_structured_stimuli() {
        let model = MicroResNet::new(SynthSpec::SynthS, 3);
        let data = SynthVision::generate(SynthSpec::SynthS, 1, 5).unwrap();
        let (images, _) = data.batch(&[0, 1]).unwrap();
        let stimuli = harvest_stimuli(model.to_spec(), &arch(), &images, 50, 9).unwrap();
        assert_eq!(stimuli.len(), 50);
        for s in &stimuli {
            assert_eq!(s.v_levels.len(), 8);
            assert_eq!(s.g_levels.len(), 64);
            assert!(s.v_levels.iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert!(s.g_levels.iter().all(|&g| (0.0..=1.0).contains(&g)));
        }
        // Bit-sliced digits are quantized to d/15ths.
        let quantized = stimuli
            .iter()
            .flat_map(|s| &s.v_levels)
            .all(|&v| (v * 15.0 - (v * 15.0).round()).abs() < 1e-5);
        assert!(quantized, "stream levels must be digit-quantized");
    }

    #[test]
    fn reservoir_is_deterministic_and_capped() {
        let model = MicroResNet::new(SynthSpec::SynthS, 3);
        let data = SynthVision::generate(SynthSpec::SynthS, 1, 5).unwrap();
        let (images, _) = data.batch(&[0]).unwrap();
        let a = harvest_stimuli(model.to_spec(), &arch(), &images, 20, 1).unwrap();
        let b = harvest_stimuli(model.to_spec(), &arch(), &images, 20, 1).unwrap();
        assert_eq!(a, b);
        let c = harvest_stimuli(model.to_spec(), &arch(), &images, 20, 2).unwrap();
        assert_ne!(a, c, "different seeds should sample differently");
    }

    #[test]
    fn log_counts_observations() {
        let log = StimulusLog::new(4, 0);
        let tile = log.register_tile(vec![0.0; 4]);
        for k in 0..10 {
            log.record(tile, &[k as f32 / 10.0, 0.0]);
        }
        assert_eq!(log.observed(), 10);
        assert_eq!(log.stimuli().len(), 4);
    }

    #[test]
    fn recording_engine_is_transparent() {
        // Wrapping must not change the computed currents.
        let params = CrossbarParams::builder(4, 4).build().unwrap();
        let log = StimulusLog::new(8, 0);
        let rec = RecordingEngine::new(IdealEngine, log.clone());
        let g = [0.5f32; 16];
        let v = [1.0f32, 0.0, 0.5, 0.25];
        let a = rec
            .program(&params, &g)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        let b = IdealEngine
            .program(&params, &g)
            .unwrap()
            .currents_batch(&v, 1)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(log.observed(), 1);
    }
}

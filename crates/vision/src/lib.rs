//! SynthVision datasets and MicroResNet models for the GENIEx
//! reproduction.
//!
//! The paper evaluates ResNet-20 on CIFAR-100 and ResNet-18 on an
//! ImageNet subset. Training those in a from-scratch Rust stack is out
//! of laptop reach, so this crate provides the documented substitution
//! (DESIGN.md §1):
//!
//! * [`SynthVision`] — deterministic procedural image-classification
//!   datasets at two scales: [`SynthSpec::SynthS`] (12×12 grayscale,
//!   8 classes; the CIFAR-100 stand-in) and [`SynthSpec::SynthL`]
//!   (16×16 RGB, 16 classes; the ImageNet-subset stand-in).
//! * [`MicroResNet`] — small residual CNNs trained with the `nn` crate;
//!   skip connections are preserved because they are the paths along
//!   which crossbar non-ideality errors propagate in the paper's
//!   networks.
//! * [`NetworkSpec`] — a frozen, framework-independent description of a
//!   trained network (ops + weights) that the functional simulator
//!   re-executes in crossbar arithmetic.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), vision::VisionError> {
//! use vision::{SynthSpec, SynthVision, MicroResNet};
//!
//! let data = SynthVision::generate(SynthSpec::SynthS, 16, 42)?;
//! assert_eq!(data.len(), 16 * 8); // 16 images per class, 8 classes
//! let mut model = MicroResNet::new(SynthSpec::SynthS, 7);
//! let (images, labels) = data.batch(&[0, 1, 2])?;
//! let logits = model.forward(&images);
//! assert_eq!(logits.shape(), &[3, 8]);
//! # let _ = labels;
//! # Ok(())
//! # }
//! ```

mod dataset;
mod error;
pub mod export;
mod models;
mod quantize;
mod spec;
mod train;

pub use dataset::{SynthSpec, SynthVision};
pub use error::VisionError;
pub use models::MicroResNet;
pub use quantize::rescale_for_fxp;
pub use spec::{spec_forward, NetworkSpec, SpecOp};
pub use train::{evaluate, train_model, TrainOptions, TrainStats};

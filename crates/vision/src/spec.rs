//! Framework-independent description of a frozen (trained) network.
//!
//! The functional simulator consumes a [`NetworkSpec`] and re-executes
//! it with crossbar arithmetic (tiling + bit-slicing + non-ideality
//! backends). [`spec_forward`] executes the same spec in plain `f32`,
//! which serves as the FP32 reference and as the parity check for the
//! simulator's ideal mode.

use crate::VisionError;
use nn::layers::{Conv2d, Dense, GlobalAvgPool, Layer, MaxPool2};
use nn::Tensor;

/// One operation of a frozen network, weights included.
#[derive(Debug, Clone)]
pub enum SpecOp {
    /// 2-D convolution with NCHW weights `[out_c, in_c, kh, kw]`.
    Conv2d {
        /// Kernel weights.
        weight: Tensor,
        /// Per-output-channel bias.
        bias: Tensor,
        /// Spatial stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
    },
    /// Fully-connected layer with weights `[out, in]`.
    Linear {
        /// Weight matrix.
        weight: Tensor,
        /// Bias vector.
        bias: Tensor,
    },
    /// Element-wise ReLU.
    Relu,
    /// 2×2 max pooling, stride 2.
    MaxPool2,
    /// Global average pooling `[b, c, h, w] -> [b, c]`.
    GlobalAvgPool,
    /// Flatten to `[b, features]`.
    Flatten,
    /// Push the current activation onto the residual stack.
    ResidualBegin,
    /// Pop the residual stack and add it to the current activation.
    ResidualAdd,
}

/// A frozen network: ordered ops plus input/output metadata.
#[derive(Debug, Clone)]
pub struct NetworkSpec {
    /// The operations, in execution order.
    pub ops: Vec<SpecOp>,
    /// Input image shape `[channels, height, width]`.
    pub input_shape: [usize; 3],
    /// Number of output classes.
    pub classes: usize,
}

impl NetworkSpec {
    /// Number of MVM-bearing ops (convolutions + linear layers) — the
    /// layers the functional simulator maps onto crossbars.
    pub fn mvm_op_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, SpecOp::Conv2d { .. } | SpecOp::Linear { .. }))
            .count()
    }
}

impl store::Canonical for NetworkSpec {
    /// Content key over every weight, bias, and structural field, so
    /// anything that changes what the network computes — retraining,
    /// rescaling, an architecture edit — changes the key.
    fn canonicalize(&self, key: &mut store::KeyBuilder) {
        for (i, shape) in self.input_shape.iter().enumerate() {
            key.usize(&format!("input_shape{i}"), *shape);
        }
        key.usize("classes", self.classes);
        key.usize("ops", self.ops.len());
        for op in &self.ops {
            match op {
                SpecOp::Conv2d {
                    weight,
                    bias,
                    stride,
                    padding,
                } => {
                    key.str("op", "conv2d")
                        .f32_slice("weight", weight.data())
                        .f32_slice("bias", bias.data())
                        .usize("stride", *stride)
                        .usize("padding", *padding);
                }
                SpecOp::Linear { weight, bias } => {
                    key.str("op", "linear")
                        .f32_slice("weight", weight.data())
                        .f32_slice("bias", bias.data());
                }
                SpecOp::Relu => {
                    key.str("op", "relu");
                }
                SpecOp::MaxPool2 => {
                    key.str("op", "maxpool2");
                }
                SpecOp::GlobalAvgPool => {
                    key.str("op", "gap");
                }
                SpecOp::Flatten => {
                    key.str("op", "flatten");
                }
                SpecOp::ResidualBegin => {
                    key.str("op", "res_begin");
                }
                SpecOp::ResidualAdd => {
                    key.str("op", "res_add");
                }
            }
        }
    }
}

/// Executes a spec in plain `f32` — the FP32 reference path.
///
/// # Errors
///
/// Returns [`VisionError::InvalidConfig`] if a `ResidualAdd` has no
/// matching `ResidualBegin`, and propagates shape errors from the
/// underlying tensor ops.
pub fn spec_forward(spec: &NetworkSpec, images: &Tensor) -> Result<Tensor, VisionError> {
    let mut x = images.clone();
    let mut residual_stack: Vec<Tensor> = Vec::new();
    for op in &spec.ops {
        x = match op {
            SpecOp::Conv2d {
                weight,
                bias,
                stride,
                padding,
            } => {
                let [oc, ic, kh, _kw] = *<&[usize; 4]>::try_from(weight.shape())
                    .map_err(|_| VisionError::InvalidConfig("conv weight rank".into()))?;
                let mut conv = Conv2d::new(ic, oc, kh, *stride, *padding, 0);
                conv.set_params(weight.clone(), bias.clone());
                conv.forward(&x, false)
            }
            SpecOp::Linear { weight, bias } => {
                let [out, inp] = *<&[usize; 2]>::try_from(weight.shape())
                    .map_err(|_| VisionError::InvalidConfig("linear weight rank".into()))?;
                let mut dense = Dense::new(inp, out, 0);
                dense.set_params(weight.clone(), bias.clone());
                dense.forward(&x, false)
            }
            SpecOp::Relu => x.map(|v| v.max(0.0)),
            SpecOp::MaxPool2 => MaxPool2::new().forward(&x, false),
            SpecOp::GlobalAvgPool => GlobalAvgPool::new().forward(&x, false),
            SpecOp::Flatten => {
                let batch = x.shape()[0];
                let rest: usize = x.shape()[1..].iter().product();
                x.reshape(&[batch, rest])?
            }
            SpecOp::ResidualBegin => {
                residual_stack.push(x.clone());
                x
            }
            SpecOp::ResidualAdd => {
                let saved = residual_stack.pop().ok_or_else(|| {
                    VisionError::InvalidConfig("ResidualAdd without ResidualBegin".into())
                })?;
                x.add(&saved)?
            }
        };
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MicroResNet, SynthSpec, SynthVision};

    #[test]
    fn spec_forward_matches_model_forward() {
        let mut model = MicroResNet::new(SynthSpec::SynthS, 11);
        let spec = model.to_spec();
        let data = SynthVision::generate(SynthSpec::SynthS, 2, 5).unwrap();
        let (x, _) = data.full_batch().unwrap();
        let direct = model.forward(&x);
        let via_spec = spec_forward(&spec, &x).unwrap();
        assert_eq!(direct.shape(), via_spec.shape());
        for (a, b) in direct.data().iter().zip(via_spec.data()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn spec_forward_matches_for_large_variant() {
        let mut model = MicroResNet::new(SynthSpec::SynthL, 3);
        let spec = model.to_spec();
        let data = SynthVision::generate(SynthSpec::SynthL, 1, 8).unwrap();
        let (x, _) = data.batch(&[0, 7]).unwrap();
        let direct = model.forward(&x);
        let via_spec = spec_forward(&spec, &x).unwrap();
        for (a, b) in direct.data().iter().zip(via_spec.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn unbalanced_residual_rejected() {
        let spec = NetworkSpec {
            ops: vec![SpecOp::ResidualAdd],
            input_shape: [1, 2, 2],
            classes: 2,
        };
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(spec_forward(&spec, &x).is_err());
    }

    #[test]
    fn mvm_op_count() {
        let model = MicroResNet::new(SynthSpec::SynthS, 0);
        // stem conv + 2 res convs + conv + 2 res convs + fc = 7
        assert_eq!(model.to_spec().mvm_op_count(), 7);
    }
}

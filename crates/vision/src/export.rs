//! Image export for visual inspection of SynthVision samples.
//!
//! Writes NetPBM files (PGM for grayscale, PPM for RGB) — the simplest
//! formats any image viewer opens, with no dependencies.

use crate::dataset::SynthVision;
use crate::VisionError;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Renders sample `index` as a NetPBM string (P2 for 1-channel, P3 for
/// 3-channel images).
///
/// # Errors
///
/// Returns [`VisionError::IndexOutOfBounds`] for bad indices.
pub fn to_netpbm(data: &SynthVision, index: usize) -> Result<String, VisionError> {
    let (images, _) = data.batch(&[index])?;
    let (c, h, w) = data.spec().image_shape();
    let mut out = String::new();
    match c {
        1 => {
            let _ = writeln!(out, "P2\n{w} {h}\n255");
            for y in 0..h {
                for x in 0..w {
                    let v = (images.at(&[0, 0, y, x]).clamp(0.0, 1.0) * 255.0) as u8;
                    let _ = write!(out, "{v} ");
                }
                out.push('\n');
            }
        }
        _ => {
            let _ = writeln!(out, "P3\n{w} {h}\n255");
            for y in 0..h {
                for x in 0..w {
                    for ch in 0..3.min(c) {
                        let v = (images.at(&[0, ch, y, x]).clamp(0.0, 1.0) * 255.0) as u8;
                        let _ = write!(out, "{v} ");
                    }
                }
                out.push('\n');
            }
        }
    }
    Ok(out)
}

/// Writes one sample per class into `dir` as `class_<k>.p{g,p}m`.
///
/// # Errors
///
/// Propagates index and filesystem errors (filesystem errors surface
/// as [`VisionError::Network`]-wrapped I/O, keeping a single error
/// type).
pub fn export_class_gallery<P: AsRef<Path>>(
    data: &SynthVision,
    dir: P,
) -> Result<Vec<std::path::PathBuf>, VisionError> {
    std::fs::create_dir_all(&dir).map_err(|e| VisionError::Network(e.into()))?;
    let classes = data.spec().classes();
    let ext = if data.spec().image_shape().0 == 1 {
        "pgm"
    } else {
        "ppm"
    };
    let mut written = Vec::new();
    for class in 0..classes {
        // Samples are interleaved: the first sample of class k is at
        // index k.
        let body = to_netpbm(data, class)?;
        let path = dir.as_ref().join(format!("class_{class}.{ext}"));
        let mut f = std::fs::File::create(&path).map_err(|e| VisionError::Network(e.into()))?;
        f.write_all(body.as_bytes())
            .map_err(|e| VisionError::Network(e.into()))?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthSpec;

    #[test]
    fn grayscale_netpbm_structure() {
        let data = SynthVision::generate(SynthSpec::SynthS, 1, 3).unwrap();
        let body = to_netpbm(&data, 0).unwrap();
        assert!(body.starts_with("P2\n12 12\n255"));
        // 12 rows of 12 values after 3 header lines.
        let value_lines: Vec<&str> = body.lines().skip(3).collect();
        assert_eq!(value_lines.len(), 12);
        assert_eq!(value_lines[0].split_whitespace().count(), 12);
        assert!(to_netpbm(&data, 999).is_err());
    }

    #[test]
    fn rgb_netpbm_structure() {
        let data = SynthVision::generate(SynthSpec::SynthL, 1, 3).unwrap();
        let body = to_netpbm(&data, 0).unwrap();
        assert!(body.starts_with("P3\n16 16\n255"));
        let value_lines: Vec<&str> = body.lines().skip(3).collect();
        assert_eq!(value_lines.len(), 16);
        assert_eq!(value_lines[0].split_whitespace().count(), 48); // 16 px * 3
    }

    #[test]
    fn gallery_round_trip() {
        let data = SynthVision::generate(SynthSpec::SynthS, 1, 3).unwrap();
        let dir = std::env::temp_dir().join("geniex_gallery_test");
        let files = export_class_gallery(&data, &dir).unwrap();
        assert_eq!(files.len(), 8);
        for f in &files {
            assert!(f.exists());
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}

//! Training and evaluation loops for MicroResNet models.

use crate::dataset::SynthVision;
use crate::models::MicroResNet;
use crate::VisionError;
use nn::loss::{accuracy, softmax_cross_entropy};
use nn::{Adam, Optimizer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyper-parameters for [`train_model`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainOptions {
    /// Passes over the dataset.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            epochs: 30,
            batch_size: 32,
            learning_rate: 2e-3,
            seed: 1,
        }
    }
}

impl store::Canonical for TrainOptions {
    fn canonicalize(&self, key: &mut store::KeyBuilder) {
        key.usize("epochs", self.epochs)
            .usize("batch_size", self.batch_size)
            .f32("learning_rate", self.learning_rate)
            .u64("seed", self.seed);
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainStats {
    /// Mean cross-entropy per epoch.
    pub epoch_losses: Vec<f32>,
    /// Accuracy on the training set after the final epoch.
    pub final_train_accuracy: f64,
}

/// Trains a model on a SynthVision dataset with Adam + softmax CE.
///
/// # Errors
///
/// * [`VisionError::InvalidConfig`] for zero epochs/batch size, an
///   empty dataset, or a model/dataset variant mismatch.
pub fn train_model(
    model: &mut MicroResNet,
    data: &SynthVision,
    options: &TrainOptions,
) -> Result<TrainStats, VisionError> {
    if options.epochs == 0 || options.batch_size == 0 {
        return Err(VisionError::InvalidConfig(
            "epochs and batch_size must be > 0".into(),
        ));
    }
    if data.is_empty() {
        return Err(VisionError::InvalidConfig("dataset is empty".into()));
    }
    if model.spec() != data.spec() {
        return Err(VisionError::InvalidConfig(format!(
            "model targets {} but dataset is {}",
            model.spec().name(),
            data.spec().name()
        )));
    }

    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut optimizer = Adam::new(options.learning_rate);
    let mut epoch_losses = Vec::with_capacity(options.epochs);

    let _span = telemetry::span("vision.train");
    let epoch_timer = telemetry::timer("vision.train.epoch_seconds");
    for epoch in 0..options.epochs {
        let t_epoch = telemetry::enabled().then(std::time::Instant::now);
        // Nested under "vision.train"; closes at the end of each
        // iteration carrying the epoch's attributes.
        let mut epoch_span = telemetry::span("epoch");
        epoch_span.attr("epoch", epoch);
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(options.batch_size) {
            let (x, labels) = data.batch(chunk)?;
            let logits = model.forward_train(&x);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels)?;
            model.zero_grad();
            model.backward(&grad);
            optimizer.step(model);
            loss_sum += loss as f64;
            batches += 1;
        }
        let mean_loss = (loss_sum / batches.max(1) as f64) as f32;
        epoch_losses.push(mean_loss);
        epoch_span.attr("loss", mean_loss as f64);
        if let Some(t0) = t_epoch {
            epoch_timer.record(t0.elapsed());
            telemetry::emit(
                "train_epoch",
                "vision.train",
                vec![
                    ("epoch".to_string(), telemetry::Json::from(epoch)),
                    ("loss".to_string(), telemetry::Json::from(mean_loss as f64)),
                    (
                        "epoch_s".to_string(),
                        telemetry::Json::from(t0.elapsed().as_secs_f64()),
                    ),
                ],
            );
        }
    }

    let final_train_accuracy = evaluate(model, data, 64)?;
    Ok(TrainStats {
        epoch_losses,
        final_train_accuracy,
    })
}

/// Evaluates top-1 accuracy of a model over a dataset, in batches.
///
/// # Errors
///
/// * [`VisionError::InvalidConfig`] for a zero batch size or a
///   model/dataset variant mismatch.
pub fn evaluate(
    model: &mut MicroResNet,
    data: &SynthVision,
    batch_size: usize,
) -> Result<f64, VisionError> {
    if batch_size == 0 {
        return Err(VisionError::InvalidConfig("batch_size must be > 0".into()));
    }
    if model.spec() != data.spec() {
        return Err(VisionError::InvalidConfig(format!(
            "model targets {} but dataset is {}",
            model.spec().name(),
            data.spec().name()
        )));
    }
    if data.is_empty() {
        return Ok(0.0);
    }
    let indices: Vec<usize> = (0..data.len()).collect();
    let mut correct_weighted = 0.0f64;
    for chunk in indices.chunks(batch_size) {
        let (x, labels) = data.batch(chunk)?;
        let logits = model.forward(&x);
        correct_weighted += accuracy(&logits, &labels)? * chunk.len() as f64;
    }
    Ok(correct_weighted / data.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthSpec;

    #[test]
    fn config_validation() {
        let data = SynthVision::generate(SynthSpec::SynthS, 2, 1).unwrap();
        let mut model = MicroResNet::new(SynthSpec::SynthS, 1);
        assert!(train_model(
            &mut model,
            &data,
            &TrainOptions {
                epochs: 0,
                ..TrainOptions::default()
            }
        )
        .is_err());
        assert!(evaluate(&mut model, &data, 0).is_err());

        let mut wrong = MicroResNet::new(SynthSpec::SynthL, 1);
        assert!(train_model(&mut wrong, &data, &TrainOptions::default()).is_err());
        assert!(evaluate(&mut wrong, &data, 8).is_err());
    }

    #[test]
    fn short_training_beats_chance() {
        // 8 classes -> chance is 12.5%. A few epochs on a small set of
        // the (deliberately noisy) dataset must already clear 45%.
        let data = SynthVision::generate(SynthSpec::SynthS, 24, 3).unwrap();
        let mut model = MicroResNet::new(SynthSpec::SynthS, 2);
        let stats = train_model(
            &mut model,
            &data,
            &TrainOptions {
                epochs: 14,
                batch_size: 32,
                learning_rate: 3e-3,
                seed: 5,
            },
        )
        .unwrap();
        assert_eq!(stats.epoch_losses.len(), 14);
        assert!(
            stats.final_train_accuracy > 0.45,
            "accuracy {}",
            stats.final_train_accuracy
        );
        // Loss must drop substantially from the first epoch.
        assert!(stats.epoch_losses.last().unwrap() < &(stats.epoch_losses[0] * 0.7));
    }

    #[test]
    fn trained_model_generalizes_to_fresh_samples() {
        let train = SynthVision::generate(SynthSpec::SynthS, 40, 3).unwrap();
        let test = SynthVision::generate(SynthSpec::SynthS, 8, 999).unwrap();
        let mut model = MicroResNet::new(SynthSpec::SynthS, 2);
        train_model(
            &mut model,
            &train,
            &TrainOptions {
                epochs: 16,
                batch_size: 32,
                learning_rate: 3e-3,
                seed: 5,
            },
        )
        .unwrap();
        let acc = evaluate(&mut model, &test, 16).unwrap();
        assert!(acc > 0.45, "held-out accuracy {acc}");
    }

    #[test]
    fn evaluate_empty_dataset_is_zero() {
        // Generate then artificially slice nothing: use per_class=1 and
        // batch over zero indices instead (empty datasets cannot be
        // constructed through the public API).
        let data = SynthVision::generate(SynthSpec::SynthS, 1, 1).unwrap();
        let model = MicroResNet::new(SynthSpec::SynthS, 1);
        let (x, labels) = data.batch(&[]).unwrap();
        assert_eq!(x.shape()[0], 0);
        assert!(labels.is_empty());
        let _ = model; // evaluate() requires non-empty; batch-level check above suffices
    }
}

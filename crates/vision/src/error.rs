use std::fmt;

/// Errors produced by dataset generation and model training.
#[derive(Debug)]
#[non_exhaustive]
pub enum VisionError {
    /// Invalid dataset or training configuration.
    InvalidConfig(String),
    /// An index into the dataset was out of bounds.
    IndexOutOfBounds { index: usize, len: usize },
    /// The neural-network substrate failed.
    Network(nn::NnError),
}

impl fmt::Display for VisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VisionError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            VisionError::IndexOutOfBounds { index, len } => {
                write!(f, "sample index {index} out of bounds for dataset of {len}")
            }
            VisionError::Network(err) => write!(f, "neural network failure: {err}"),
        }
    }
}

impl std::error::Error for VisionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VisionError::Network(err) => Some(err),
            _ => None,
        }
    }
}

impl From<nn::NnError> for VisionError {
    fn from(err: nn::NnError) -> Self {
        VisionError::Network(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = VisionError::IndexOutOfBounds { index: 9, len: 3 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VisionError>();
    }
}

//! The MicroResNet model family.
//!
//! Scaled-down residual CNNs standing in for the paper's ResNet-20 /
//! ResNet-18 (see DESIGN.md §1). The residual topology is preserved —
//! skip connections are the paths along which crossbar errors propagate
//! unattenuated, which is central to how non-idealities accumulate over
//! depth in the paper's experiments.

use crate::dataset::SynthSpec;
use crate::spec::{NetworkSpec, SpecOp};
use nn::layers::{Conv2d, Dense, GlobalAvgPool, Layer, MaxPool2, Relu};
use nn::Tensor;

/// A residual block: `y = ReLU(conv2(ReLU(conv1(x))) + x)`.
#[derive(Debug, Clone)]
struct ResBlock {
    conv1: Conv2d,
    relu1: Relu,
    conv2: Conv2d,
    relu_out: Relu,
    cached_input: Option<Tensor>,
}

impl ResBlock {
    fn new(channels: usize, seed: u64) -> Self {
        ResBlock {
            conv1: Conv2d::new(channels, channels, 3, 1, 1, seed),
            relu1: Relu::new(),
            conv2: Conv2d::new(channels, channels, 3, 1, 1, seed.wrapping_add(1)),
            relu_out: Relu::new(),
            cached_input: None,
        }
    }
}

impl Layer for ResBlock {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let a = self.conv1.forward(input, train);
        let b = self.relu1.forward(&a, train);
        let c = self.conv2.forward(&b, train);
        let s = c.add(input).expect("residual shapes match by construction");
        if train {
            self.cached_input = Some(input.clone());
        }
        self.relu_out.forward(&s, train)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let gs = self.relu_out.backward(grad_output);
        let gb = self.conv2.backward(&gs);
        let ga = self.relu1.backward(&gb);
        let gx_branch = self.conv1.backward(&ga);
        self.cached_input
            .take()
            .expect("resblock backward without forward");
        gx_branch.add(&gs).expect("residual gradient shapes")
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.conv1.visit_params(visitor);
        self.conv2.visit_params(visitor);
    }

    fn zero_grad(&mut self) {
        self.conv1.zero_grad();
        self.conv2.zero_grad();
    }
}

/// One stage of the sequential model.
// Conv2d dominates the enum's size, but blocks live in one short Vec
// per model; boxing would add a pointer chase to every forward pass.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum Block {
    Conv(Conv2d),
    Relu(Relu),
    Res(ResBlock),
    Pool(MaxPool2),
    Gap(GlobalAvgPool),
    Dense(Dense),
}

impl Block {
    fn as_layer(&mut self) -> &mut dyn Layer {
        match self {
            Block::Conv(l) => l,
            Block::Relu(l) => l,
            Block::Res(l) => l,
            Block::Pool(l) => l,
            Block::Gap(l) => l,
            Block::Dense(l) => l,
        }
    }
}

/// A small residual CNN for a SynthVision variant.
///
/// Architectures:
///
/// * synth-s: `conv(1→8) → res(8) → pool → conv(8→16) → res(16) → gap
///   → fc(16→8)` — ≈ 7.7k parameters.
/// * synth-l: `conv(3→12) → res(12) → pool → conv(12→24) → res(24) →
///   pool → conv(24→32) → gap → fc(32→16)` — ≈ 25k parameters.
#[derive(Debug, Clone)]
pub struct MicroResNet {
    spec: SynthSpec,
    blocks: Vec<Block>,
}

impl MicroResNet {
    /// Creates a freshly initialized model for the given dataset
    /// variant, deterministic in `seed`.
    pub fn new(spec: SynthSpec, seed: u64) -> Self {
        let mut blocks = Vec::new();
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(101);
            s
        };
        match spec {
            SynthSpec::SynthS => {
                blocks.push(Block::Conv(Conv2d::new(1, 8, 3, 1, 1, next())));
                blocks.push(Block::Relu(Relu::new()));
                blocks.push(Block::Res(ResBlock::new(8, next())));
                blocks.push(Block::Pool(MaxPool2::new()));
                blocks.push(Block::Conv(Conv2d::new(8, 16, 3, 1, 1, next())));
                blocks.push(Block::Relu(Relu::new()));
                blocks.push(Block::Res(ResBlock::new(16, next())));
                blocks.push(Block::Gap(GlobalAvgPool::new()));
                blocks.push(Block::Dense(Dense::new(16, 8, next())));
            }
            SynthSpec::SynthL => {
                blocks.push(Block::Conv(Conv2d::new(3, 12, 3, 1, 1, next())));
                blocks.push(Block::Relu(Relu::new()));
                blocks.push(Block::Res(ResBlock::new(12, next())));
                blocks.push(Block::Pool(MaxPool2::new()));
                blocks.push(Block::Conv(Conv2d::new(12, 24, 3, 1, 1, next())));
                blocks.push(Block::Relu(Relu::new()));
                blocks.push(Block::Res(ResBlock::new(24, next())));
                blocks.push(Block::Pool(MaxPool2::new()));
                blocks.push(Block::Conv(Conv2d::new(24, 32, 3, 1, 1, next())));
                blocks.push(Block::Relu(Relu::new()));
                blocks.push(Block::Gap(GlobalAvgPool::new()));
                blocks.push(Block::Dense(Dense::new(32, 16, next())));
            }
        }
        MicroResNet { spec, blocks }
    }

    /// The dataset variant this model targets.
    pub fn spec(&self) -> SynthSpec {
        self.spec
    }

    /// Inference forward pass: images `[batch, c, h, w]` to logits
    /// `[batch, classes]`.
    pub fn forward(&mut self, images: &Tensor) -> Tensor {
        self.run(images, false)
    }

    /// Training forward pass (caches activations for backward).
    pub fn forward_train(&mut self, images: &Tensor) -> Tensor {
        self.run(images, true)
    }

    fn run(&mut self, images: &Tensor, train: bool) -> Tensor {
        let mut x = images.clone();
        for b in &mut self.blocks {
            x = b.as_layer().forward(&x, train);
        }
        x
    }

    /// Backward pass; returns the input gradient.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training forward pass.
    pub fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
        let mut g = grad_logits.clone();
        for b in self.blocks.iter_mut().rev() {
            g = b.as_layer().backward(&g);
        }
        g
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        for b in &mut self.blocks {
            b.as_layer().zero_grad();
        }
    }

    /// Total trainable parameter count.
    pub fn parameter_count(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |p, _| count += p.len());
        count
    }

    /// Serializes the model (variant tag + all parameters).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save<W: std::io::Write>(&mut self, w: &mut W) -> Result<(), crate::VisionError> {
        nn::serialize::write_magic(w, b"GMRN")?;
        nn::serialize::write_u32(
            w,
            match self.spec {
                SynthSpec::SynthS => 0,
                SynthSpec::SynthL => 1,
            },
        )?;
        nn::serialize::save_params(self, w)?;
        Ok(())
    }

    /// Deserializes a model written by [`save`](MicroResNet::save).
    ///
    /// # Errors
    ///
    /// Returns a format error for unknown variant tags or mismatched
    /// parameter buffers.
    pub fn load<R: std::io::Read>(r: &mut R) -> Result<Self, crate::VisionError> {
        nn::serialize::expect_magic(r, b"GMRN")?;
        let spec = match nn::serialize::read_u32(r)? {
            0 => SynthSpec::SynthS,
            1 => SynthSpec::SynthL,
            other => {
                return Err(crate::VisionError::Network(nn::NnError::Format(format!(
                    "unknown model variant tag {other}"
                ))))
            }
        };
        let mut model = MicroResNet::new(spec, 0);
        nn::serialize::load_params(&mut model, r)?;
        Ok(model)
    }

    /// Exports the frozen network as a framework-independent spec for
    /// the functional simulator (weights are cloned).
    pub fn to_spec(&self) -> NetworkSpec {
        let mut ops = Vec::new();
        for b in &self.blocks {
            match b {
                Block::Conv(c) => {
                    ops.push(SpecOp::Conv2d {
                        weight: c.weight().clone(),
                        bias: c.bias().clone(),
                        stride: c.stride(),
                        padding: c.padding(),
                    });
                }
                Block::Relu(_) => ops.push(SpecOp::Relu),
                Block::Res(r) => {
                    ops.push(SpecOp::ResidualBegin);
                    ops.push(SpecOp::Conv2d {
                        weight: r.conv1.weight().clone(),
                        bias: r.conv1.bias().clone(),
                        stride: r.conv1.stride(),
                        padding: r.conv1.padding(),
                    });
                    ops.push(SpecOp::Relu);
                    ops.push(SpecOp::Conv2d {
                        weight: r.conv2.weight().clone(),
                        bias: r.conv2.bias().clone(),
                        stride: r.conv2.stride(),
                        padding: r.conv2.padding(),
                    });
                    ops.push(SpecOp::ResidualAdd);
                    ops.push(SpecOp::Relu);
                }
                Block::Pool(_) => ops.push(SpecOp::MaxPool2),
                Block::Gap(_) => ops.push(SpecOp::GlobalAvgPool),
                Block::Dense(d) => {
                    ops.push(SpecOp::Linear {
                        weight: d.weight().clone(),
                        bias: d.bias().clone(),
                    });
                }
            }
        }
        let (c, h, w) = self.spec.image_shape();
        NetworkSpec {
            ops,
            input_shape: [c, h, w],
            classes: self.spec.classes(),
        }
    }
}

impl Layer for MicroResNet {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.run(input, train)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        MicroResNet::backward(self, grad_output)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for b in &mut self.blocks {
            b.as_layer().visit_params(visitor);
        }
    }

    fn zero_grad(&mut self) {
        MicroResNet::zero_grad(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::loss::softmax_cross_entropy;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_images(spec: SynthSpec, batch: usize, seed: u64) -> Tensor {
        let (c, h, w) = spec.image_shape();
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..batch * c * h * w)
            .map(|_| rng.gen_range(0.0f32..1.0))
            .collect();
        Tensor::from_vec(data, &[batch, c, h, w]).unwrap()
    }

    #[test]
    fn forward_shapes() {
        for spec in [SynthSpec::SynthS, SynthSpec::SynthL] {
            let mut model = MicroResNet::new(spec, 1);
            let x = random_images(spec, 2, 3);
            let y = model.forward(&x);
            assert_eq!(y.shape(), &[2, spec.classes()]);
            assert!(y.data().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn parameter_counts_in_expected_range() {
        let mut s = MicroResNet::new(SynthSpec::SynthS, 0);
        let ps = s.parameter_count();
        assert!((5_000..12_000).contains(&ps), "synth-s params {ps}");
        let mut l = MicroResNet::new(SynthSpec::SynthL, 0);
        let pl = l.parameter_count();
        assert!((18_000..40_000).contains(&pl), "synth-l params {pl}");
    }

    #[test]
    fn deterministic_by_seed() {
        let mut a = MicroResNet::new(SynthSpec::SynthS, 5);
        let mut b = MicroResNet::new(SynthSpec::SynthS, 5);
        let x = random_images(SynthSpec::SynthS, 1, 2);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let mut model = MicroResNet::new(SynthSpec::SynthS, 3);
        let x = random_images(SynthSpec::SynthS, 4, 7);
        let logits = model.forward_train(&x);
        let (_, grad) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
        model.zero_grad();
        model.backward(&grad);
        let mut buffers = 0;
        let mut nonzero_buffers = 0;
        model.visit_params(&mut |_, g| {
            buffers += 1;
            if g.iter().any(|&x| x != 0.0) {
                nonzero_buffers += 1;
            }
        });
        // Every weight/bias buffer must receive gradient signal.
        assert_eq!(buffers, nonzero_buffers, "dead parameter buffers");
    }

    #[test]
    fn residual_block_gradient_check() {
        let mut block = ResBlock::new(2, 9);
        let x = {
            let mut rng = StdRng::seed_from_u64(4);
            let data = (0..2 * 2 * 4 * 4)
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect();
            Tensor::from_vec(data, &[2, 2, 4, 4]).unwrap()
        };
        let out = block.forward(&x, true);
        let ones = Tensor::from_vec(vec![1.0; out.len()], out.shape()).unwrap();
        let grad = block.backward(&ones);

        // The identity path moves s cells 1:1 with the input, so a
        // perturbation of size eps flips every ReLU whose pre-activation
        // sits within eps of zero; keep eps tiny and accumulate sums in
        // f64 to stay below the flip probability while avoiding
        // cancellation noise.
        let eps = 1e-4f32;
        let mut rng = StdRng::seed_from_u64(11);
        let mut matches = 0;
        let probes = 12;
        for _ in 0..probes {
            let idx = rng.gen_range(0..x.len());
            let mut plus = x.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = x.clone();
            minus.data_mut()[idx] -= eps;
            let fp: f64 = block
                .forward(&plus, false)
                .data()
                .iter()
                .map(|&v| v as f64)
                .sum();
            let fm: f64 = block
                .forward(&minus, false)
                .data()
                .iter()
                .map(|&v| v as f64)
                .sum();
            let numeric = ((fp - fm) / (2.0 * eps as f64)) as f32;
            let analytic = grad.data()[idx];
            if (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()) {
                matches += 1;
            }
        }
        assert!(
            matches >= probes - 1,
            "only {matches}/{probes} residual-gradient probes matched"
        );
    }

    #[test]
    fn save_load_round_trip() {
        let mut a = MicroResNet::new(SynthSpec::SynthS, 5);
        let mut buf = Vec::new();
        a.save(&mut buf).unwrap();
        let mut b = MicroResNet::load(&mut std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(b.spec(), SynthSpec::SynthS);
        let x = random_images(SynthSpec::SynthS, 2, 8);
        assert_eq!(a.forward(&x), b.forward(&x));

        // Corrupt variant tag.
        let mut bad = buf.clone();
        bad[4] = 9;
        assert!(MicroResNet::load(&mut std::io::Cursor::new(&bad)).is_err());
    }

    #[test]
    fn spec_export_structure() {
        let model = MicroResNet::new(SynthSpec::SynthS, 1);
        let spec = model.to_spec();
        assert_eq!(spec.input_shape, [1, 12, 12]);
        assert_eq!(spec.classes, 8);
        // conv+relu, res(6 ops), pool, conv+relu, res(6), gap, dense
        assert_eq!(spec.ops.len(), 2 + 6 + 1 + 2 + 6 + 1 + 1);
        assert!(matches!(spec.ops[0], SpecOp::Conv2d { .. }));
        assert!(matches!(spec.ops.last(), Some(SpecOp::Linear { .. })));
        let begins = spec
            .ops
            .iter()
            .filter(|o| matches!(o, SpecOp::ResidualBegin))
            .count();
        let adds = spec
            .ops
            .iter()
            .filter(|o| matches!(o, SpecOp::ResidualAdd))
            .count();
        assert_eq!(begins, 2);
        assert_eq!(adds, 2);
    }
}

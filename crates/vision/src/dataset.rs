//! SynthVision: deterministic procedural image-classification data.
//!
//! Each class is a geometric prototype (outline box, disc, cross, X,
//! stripes, checkerboard, …) rendered with per-sample jitter: random
//! translation, amplitude, and additive noise. The large-scale variant
//! doubles the class count by rendering each shape in one of two color
//! schemes across the three channels.
//!
//! The point is not visual realism — it is that a *trained* network
//! with distributed fixed-point weights and real convolutions responds
//! to crossbar non-idealities the same way the paper's CIFAR/ImageNet
//! networks do, while remaining trainable in seconds with a pure-Rust
//! stack.

use crate::VisionError;
use nn::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which SynthVision variant to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SynthSpec {
    /// 12×12 grayscale, 8 classes — the CIFAR-100 stand-in ("synth-s").
    SynthS,
    /// 16×16 RGB, 16 classes — the ImageNet-subset stand-in ("synth-l").
    SynthL,
}

impl SynthSpec {
    /// Image shape `(channels, height, width)`.
    pub fn image_shape(&self) -> (usize, usize, usize) {
        match self {
            SynthSpec::SynthS => (1, 12, 12),
            SynthSpec::SynthL => (3, 16, 16),
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        match self {
            SynthSpec::SynthS => 8,
            SynthSpec::SynthL => 16,
        }
    }

    /// Short dataset name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SynthSpec::SynthS => "synth-s",
            SynthSpec::SynthL => "synth-l",
        }
    }
}

impl store::Canonical for SynthSpec {
    fn canonicalize(&self, key: &mut store::KeyBuilder) {
        key.str("spec", self.name());
    }
}

/// A generated dataset: images (NCHW, values in `[0, 1]`) plus labels.
#[derive(Debug, Clone)]
pub struct SynthVision {
    spec: SynthSpec,
    /// Flat image data, one `c·h·w` block per sample.
    data: Vec<f32>,
    labels: Vec<usize>,
}

impl SynthVision {
    /// Generates `per_class` samples of every class, deterministically
    /// from `seed`. Samples are interleaved by class (sample `i` has
    /// label `i % classes`), so any prefix is class-balanced.
    ///
    /// # Errors
    ///
    /// Returns [`VisionError::InvalidConfig`] if `per_class == 0`.
    pub fn generate(spec: SynthSpec, per_class: usize, seed: u64) -> Result<Self, VisionError> {
        if per_class == 0 {
            return Err(VisionError::InvalidConfig("per_class must be > 0".into()));
        }
        let classes = spec.classes();
        let (c, h, w) = spec.image_shape();
        let total = per_class * classes;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(total * c * h * w);
        let mut labels = Vec::with_capacity(total);
        for k in 0..total {
            let class = k % classes;
            render(spec, class, &mut rng, &mut data);
            labels.push(class);
        }
        Ok(SynthVision { spec, data, labels })
    }

    /// The variant this dataset was generated from.
    pub fn spec(&self) -> SynthSpec {
        self.spec
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Label of sample `index`.
    ///
    /// # Errors
    ///
    /// Returns [`VisionError::IndexOutOfBounds`] for bad indices.
    pub fn label(&self, index: usize) -> Result<usize, VisionError> {
        self.labels
            .get(index)
            .copied()
            .ok_or(VisionError::IndexOutOfBounds {
                index,
                len: self.labels.len(),
            })
    }

    /// All labels, in sample order.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Assembles a batch tensor `[batch, c, h, w]` plus labels for the
    /// given sample indices.
    ///
    /// # Errors
    ///
    /// Returns [`VisionError::IndexOutOfBounds`] if any index is bad.
    pub fn batch(&self, indices: &[usize]) -> Result<(Tensor, Vec<usize>), VisionError> {
        let (c, h, w) = self.spec.image_shape();
        let stride = c * h * w;
        let mut out = Vec::with_capacity(indices.len() * stride);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.labels.len() {
                return Err(VisionError::IndexOutOfBounds {
                    index: i,
                    len: self.labels.len(),
                });
            }
            out.extend_from_slice(&self.data[i * stride..(i + 1) * stride]);
            labels.push(self.labels[i]);
        }
        let tensor = Tensor::from_vec(out, &[indices.len(), c, h, w])?;
        Ok((tensor, labels))
    }

    /// The whole dataset as one batch.
    ///
    /// # Errors
    ///
    /// Propagates tensor-construction failures (cannot happen for a
    /// well-formed dataset).
    pub fn full_batch(&self) -> Result<(Tensor, Vec<usize>), VisionError> {
        let indices: Vec<usize> = (0..self.len()).collect();
        self.batch(&indices)
    }
}

/// Renders one sample of `class` into `out` (appending `c·h·w` values).
fn render(spec: SynthSpec, class: usize, rng: &mut StdRng, out: &mut Vec<f32>) {
    let (c, h, w) = spec.image_shape();
    let shape_class = class % 8;
    let color_scheme = class / 8; // 0 for synth-s; 0/1 for synth-l

    // Per-sample jitter. The difficulty is tuned so a trained
    // MicroResNet lands in the high-80s/low-90s accuracy band — like
    // the paper's CIFAR/ImageNet baselines, the test set must contain
    // borderline decisions for non-ideality degradation to register.
    let dx = rng.gen_range(-3i32..=3);
    let dy = rng.gen_range(-3i32..=3);
    let amplitude = rng.gen_range(0.3f32..0.9);
    let noise_sigma = 0.28f32;

    // Draw the shape prototype on a single plane.
    let mut plane = vec![0.0f32; h * w];
    draw_shape(shape_class, h, w, dx, dy, amplitude, &mut plane);

    // Distribute across channels per color scheme, then add noise.
    let start = out.len();
    for ch in 0..c {
        let gain = channel_gain(c, ch, color_scheme);
        for &p in &plane {
            out.push(p * gain);
        }
    }
    for v in &mut out[start..] {
        // Box-Muller-free cheap noise: sum of two uniforms, zero-mean.
        let n = (rng.gen::<f32>() + rng.gen::<f32>() - 1.0) * noise_sigma * 2.0;
        *v = (*v + n).clamp(0.0, 1.0);
    }
}

/// How strongly `channel` expresses the shape under `scheme`.
fn channel_gain(channels: usize, channel: usize, scheme: usize) -> f32 {
    if channels == 1 {
        return 1.0;
    }
    // Scheme 0: warm (strong ch0, weak ch2); scheme 1: cold (reverse).
    match (scheme, channel) {
        (0, 0) => 1.0,
        (0, 1) => 0.55,
        (0, 2) => 0.15,
        (1, 0) => 0.15,
        (1, 1) => 0.55,
        (1, 2) => 1.0,
        _ => 0.5,
    }
}

/// Draws shape prototype `shape` (0..8) with translation `(dx, dy)`.
fn draw_shape(shape: usize, h: usize, w: usize, dx: i32, dy: i32, amp: f32, plane: &mut [f32]) {
    let cy = (h as i32 / 2 + dy) as f32;
    let cx = (w as i32 / 2 + dx) as f32;
    let r_outer = (h.min(w) as f32) * 0.33;
    for y in 0..h {
        for x in 0..w {
            let fy = y as f32 - cy;
            let fx = x as f32 - cx;
            let on = match shape {
                // 0: outline box
                0 => fy.abs().max(fx.abs()) <= r_outer && fy.abs().max(fx.abs()) > r_outer - 1.5,
                // 1: filled box
                1 => fy.abs().max(fx.abs()) <= r_outer * 0.8,
                // 2: disc
                2 => (fy * fy + fx * fx).sqrt() <= r_outer * 0.9,
                // 3: plus cross
                3 => {
                    (fy.abs() <= 1.0 && fx.abs() <= r_outer)
                        || (fx.abs() <= 1.0 && fy.abs() <= r_outer)
                }
                // 4: X cross
                4 => {
                    ((fy - fx).abs() <= 1.2 || (fy + fx).abs() <= 1.2)
                        && fy.abs().max(fx.abs()) <= r_outer
                }
                // 5: horizontal stripes
                5 => (y as i32 + dy).rem_euclid(3) == 0,
                // 6: vertical stripes
                6 => (x as i32 + dx).rem_euclid(3) == 0,
                // 7: checkerboard
                7 => ((x as i32 + dx) / 2 + (y as i32 + dy) / 2).rem_euclid(2) == 0,
                _ => unreachable!("shape classes are 0..8"),
            };
            if on {
                plane[y * w + x] = amp;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_validates_and_balances() {
        assert!(SynthVision::generate(SynthSpec::SynthS, 0, 1).is_err());
        let d = SynthVision::generate(SynthSpec::SynthS, 5, 1).unwrap();
        assert_eq!(d.len(), 40);
        let mut counts = [0usize; 8];
        for &l in d.labels() {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 5));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SynthVision::generate(SynthSpec::SynthL, 2, 9).unwrap();
        let b = SynthVision::generate(SynthSpec::SynthL, 2, 9).unwrap();
        let c = SynthVision::generate(SynthSpec::SynthL, 2, 10).unwrap();
        assert_eq!(a.data, b.data);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn pixel_range_is_unit_interval() {
        for spec in [SynthSpec::SynthS, SynthSpec::SynthL] {
            let d = SynthVision::generate(spec, 3, 2).unwrap();
            assert!(d.data.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn batch_shapes() {
        let d = SynthVision::generate(SynthSpec::SynthS, 2, 3).unwrap();
        let (x, labels) = d.batch(&[0, 5, 9]).unwrap();
        assert_eq!(x.shape(), &[3, 1, 12, 12]);
        assert_eq!(labels, vec![0, 5, 1]);
        assert!(d.batch(&[100]).is_err());

        let (x, labels) = d.full_batch().unwrap();
        assert_eq!(x.shape(), &[16, 1, 12, 12]);
        assert_eq!(labels.len(), 16);
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Mean per-class images must differ pairwise by a solid margin,
        // otherwise the classification task is ill-posed.
        let d = SynthVision::generate(SynthSpec::SynthS, 20, 4).unwrap();
        let (c, h, w) = SynthSpec::SynthS.image_shape();
        let stride = c * h * w;
        let mut means = vec![vec![0.0f32; stride]; 8];
        let mut counts = [0usize; 8];
        for i in 0..d.len() {
            let l = d.labels()[i];
            counts[l] += 1;
            for (m, &p) in means[l]
                .iter_mut()
                .zip(&d.data[i * stride..(i + 1) * stride])
            {
                *m += p;
            }
        }
        for (m, &n) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= n as f32;
            }
        }
        for a in 0..8 {
            for b in (a + 1)..8 {
                let dist: f32 = means[a]
                    .iter()
                    .zip(&means[b])
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f32>()
                    .sqrt();
                assert!(dist > 0.5, "classes {a} and {b} too similar ({dist})");
            }
        }
    }

    #[test]
    fn synth_l_color_schemes_differ() {
        // Class k and k+8 share a shape but differ in channel balance.
        let d = SynthVision::generate(SynthSpec::SynthL, 10, 5).unwrap();
        let (c, h, w) = SynthSpec::SynthL.image_shape();
        let stride = c * h * w;
        let plane = h * w;
        let mut ch0 = [0.0f32; 16];
        let mut ch2 = [0.0f32; 16];
        for i in 0..d.len() {
            let l = d.labels()[i];
            let img = &d.data[i * stride..(i + 1) * stride];
            ch0[l] += img[..plane].iter().sum::<f32>();
            ch2[l] += img[2 * plane..].iter().sum::<f32>();
        }
        for shape in 0..8 {
            // Warm scheme: ch0 heavy; cold scheme: ch2 heavy.
            assert!(ch0[shape] > ch2[shape], "class {shape} should be warm");
            assert!(
                ch2[shape + 8] > ch0[shape + 8],
                "class {} should be cold",
                shape + 8
            );
        }
    }

    #[test]
    fn spec_metadata() {
        assert_eq!(SynthSpec::SynthS.image_shape(), (1, 12, 12));
        assert_eq!(SynthSpec::SynthL.image_shape(), (3, 16, 16));
        assert_eq!(SynthSpec::SynthS.classes(), 8);
        assert_eq!(SynthSpec::SynthL.classes(), 16);
        assert_ne!(SynthSpec::SynthS.name(), SynthSpec::SynthL.name());
    }
}

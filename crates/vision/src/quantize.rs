//! Calibration-based activation-range rescaling for fixed-point
//! deployment.
//!
//! The functional simulator's activation format has 3 integer bits
//! (range ±4, as in the paper's 16-bit/13-fraction format). A freshly
//! trained FP32 network routinely produces activations and logits far
//! outside that range, which would saturate every layer. Because ReLU
//! networks are positively homogeneous, scaling a layer's weights by
//! `α > 0` scales its output by `α` without changing anything else —
//! so the standard deployment fix is to fold per-layer scale factors
//! into the weights such that every intermediate activation fits the
//! format. The final logits end up uniformly scaled, which preserves
//! the argmax and therefore the accuracy.
//!
//! Residual blocks constrain the folding: the skip path carries the
//! block input's scale, so the *last* MVM inside a block must return
//! to that scale for the add to be consistent.

use crate::spec::{NetworkSpec, SpecOp};
use crate::VisionError;
use nn::layers::{Conv2d, Dense, GlobalAvgPool, Layer, MaxPool2};
use nn::Tensor;

/// Per-op output maxima from a calibration forward pass.
fn calibration_maxima(spec: &NetworkSpec, images: &Tensor) -> Result<Vec<f32>, VisionError> {
    let mut x = images.clone();
    let mut residual_stack: Vec<Tensor> = Vec::new();
    let mut maxima = Vec::with_capacity(spec.ops.len());
    for op in &spec.ops {
        x = match op {
            SpecOp::Conv2d {
                weight,
                bias,
                stride,
                padding,
            } => {
                let [oc, ic, kh, _] = *<&[usize; 4]>::try_from(weight.shape())
                    .map_err(|_| VisionError::InvalidConfig("conv weight rank".into()))?;
                let mut conv = Conv2d::new(ic, oc, kh, *stride, *padding, 0);
                conv.set_params(weight.clone(), bias.clone());
                conv.forward(&x, false)
            }
            SpecOp::Linear { weight, bias } => {
                let [out, inp] = *<&[usize; 2]>::try_from(weight.shape())
                    .map_err(|_| VisionError::InvalidConfig("linear weight rank".into()))?;
                let mut dense = Dense::new(inp, out, 0);
                dense.set_params(weight.clone(), bias.clone());
                dense.forward(&x, false)
            }
            SpecOp::Relu => x.map(|v| v.max(0.0)),
            SpecOp::MaxPool2 => MaxPool2::new().forward(&x, false),
            SpecOp::GlobalAvgPool => GlobalAvgPool::new().forward(&x, false),
            SpecOp::Flatten => {
                let batch = x.shape()[0];
                let rest: usize = x.shape()[1..].iter().product();
                x.reshape(&[batch, rest])?
            }
            SpecOp::ResidualBegin => {
                residual_stack.push(x.clone());
                x
            }
            SpecOp::ResidualAdd => {
                let saved = residual_stack.pop().ok_or_else(|| {
                    VisionError::InvalidConfig("ResidualAdd without ResidualBegin".into())
                })?;
                x.add(&saved)?
            }
        };
        maxima.push(x.max_abs());
    }
    Ok(maxima)
}

/// Assigns each op's output to a *scale group*. A new group starts
/// after every MVM except the final MVM inside a residual region
/// (whose output must stay in the region's input group so the skip
/// add is consistent). `ResidualAdd` outputs rejoin the input group.
fn scale_groups(spec: &NetworkSpec) -> Result<Vec<usize>, VisionError> {
    // Identify, per residual region, the last MVM inside it.
    let mut forced_mvms = vec![false; spec.ops.len()];
    let mut begin_stack: Vec<usize> = Vec::new();
    let mut last_mvm_in_region: Vec<Option<usize>> = Vec::new();
    for (i, op) in spec.ops.iter().enumerate() {
        match op {
            SpecOp::ResidualBegin => {
                if !begin_stack.is_empty() {
                    return Err(VisionError::InvalidConfig(
                        "nested residual regions are not supported by fxp rescaling".into(),
                    ));
                }
                begin_stack.push(i);
                last_mvm_in_region.push(None);
            }
            SpecOp::ResidualAdd => {
                begin_stack.pop().ok_or_else(|| {
                    VisionError::InvalidConfig("ResidualAdd without ResidualBegin".into())
                })?;
                if let Some(Some(k)) = last_mvm_in_region.pop() {
                    forced_mvms[k] = true;
                } else {
                    return Err(VisionError::InvalidConfig(
                        "residual region without an MVM cannot be rescaled".into(),
                    ));
                }
            }
            SpecOp::Conv2d { .. } | SpecOp::Linear { .. } => {
                if let Some(slot) = last_mvm_in_region.last_mut() {
                    if !begin_stack.is_empty() {
                        *slot = Some(i);
                    }
                }
            }
            _ => {}
        }
    }
    if !begin_stack.is_empty() {
        return Err(VisionError::InvalidConfig(
            "unterminated residual region".into(),
        ));
    }

    // Walk ops assigning groups. Group 0 is the network input.
    let mut groups = vec![0usize; spec.ops.len()];
    let mut current = 0usize;
    let mut next_group = 1usize;
    // Scale group at each ResidualBegin, restored at the matching Add
    // and forced onto the region's last MVM.
    let mut region_entry_group: Option<usize> = None;
    for (i, op) in spec.ops.iter().enumerate() {
        match op {
            SpecOp::ResidualBegin => {
                region_entry_group = Some(current);
                groups[i] = current;
            }
            SpecOp::ResidualAdd => {
                current = region_entry_group.take().expect("validated above");
                groups[i] = current;
            }
            SpecOp::Conv2d { .. } | SpecOp::Linear { .. } => {
                if forced_mvms[i] {
                    current = region_entry_group.expect("forced mvm inside region");
                } else {
                    current = next_group;
                    next_group += 1;
                }
                groups[i] = current;
            }
            _ => {
                groups[i] = current;
            }
        }
    }
    Ok(groups)
}

/// Rescales a frozen network so that, on the calibration batch, every
/// intermediate activation magnitude is at most `target`.
///
/// Returns the transformed spec. The final logits come out scaled by a
/// positive constant, so classification decisions are unchanged; use a
/// `target` with safety margin below the fixed-point range limit
/// (e.g. 3.5 for a ±4 format).
///
/// # Errors
///
/// * [`VisionError::InvalidConfig`] if `target` is not positive, the
///   calibration batch is empty, or the spec's residual structure is
///   malformed/nested.
pub fn rescale_for_fxp(
    spec: &NetworkSpec,
    calibration: &Tensor,
    target: f32,
) -> Result<NetworkSpec, VisionError> {
    if target.is_nan() || target <= 0.0 {
        return Err(VisionError::InvalidConfig(format!(
            "target must be positive, got {target}"
        )));
    }
    if calibration.is_empty() {
        return Err(VisionError::InvalidConfig(
            "calibration batch is empty".into(),
        ));
    }
    let maxima = calibration_maxima(spec, calibration)?;
    let groups = scale_groups(spec)?;
    let group_count = groups.iter().copied().max().unwrap_or(0) + 1;

    // Raw maximum per group (inputs are in [0, 1] -> group 0 max 1).
    let mut group_max = vec![0.0f32; group_count];
    group_max[0] = 1.0;
    for (i, &g) in groups.iter().enumerate() {
        group_max[g] = group_max[g].max(maxima[i]);
    }
    // Scale per group: group 0 keeps scale 1 (inputs are consumed
    // as-is); other groups scale their maxima to `target`.
    let mut group_scale = vec![1.0f32; group_count];
    for g in 1..group_count {
        group_scale[g] = if group_max[g] > 0.0 {
            target / group_max[g]
        } else {
            1.0
        };
    }

    // Transform each MVM: W' = W * s_out / s_in, b' = b * s_out.
    let mut ops = Vec::with_capacity(spec.ops.len());
    let mut in_group = 0usize;
    for (i, op) in spec.ops.iter().enumerate() {
        let out_group = groups[i];
        let transformed = match op {
            SpecOp::Conv2d {
                weight,
                bias,
                stride,
                padding,
            } => {
                let s_in = group_scale[in_group];
                let s_out = group_scale[out_group];
                SpecOp::Conv2d {
                    weight: weight.scale(s_out / s_in),
                    bias: bias.scale(s_out),
                    stride: *stride,
                    padding: *padding,
                }
            }
            SpecOp::Linear { weight, bias } => {
                let s_in = group_scale[in_group];
                let s_out = group_scale[out_group];
                SpecOp::Linear {
                    weight: weight.scale(s_out / s_in),
                    bias: bias.scale(s_out),
                }
            }
            other => other.clone(),
        };
        ops.push(transformed);
        // The next op consumes this op's output group — except inside
        // a residual branch, where ops consume the branch chain; the
        // group bookkeeping above already encodes that correctly
        // because branch MVMs get their own groups in sequence.
        in_group = out_group;
    }

    Ok(NetworkSpec {
        ops,
        input_shape: spec.input_shape,
        classes: spec.classes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::spec_forward;
    use crate::{MicroResNet, SynthSpec, SynthVision};

    fn trained_like_spec(seed: u64) -> (NetworkSpec, Tensor) {
        // An untrained model already exercises the machinery; scale it
        // up so activations exceed the target.
        let model = MicroResNet::new(SynthSpec::SynthS, seed);
        let mut spec = model.to_spec();
        // Inflate the stem conv to force large activations.
        if let SpecOp::Conv2d { weight, .. } = &mut spec.ops[0] {
            *weight = weight.scale(30.0);
        }
        let data = SynthVision::generate(SynthSpec::SynthS, 2, 5).unwrap();
        let (images, _) = data.full_batch().unwrap();
        (spec, images)
    }

    #[test]
    fn rescaled_network_fits_target() {
        let (spec, images) = trained_like_spec(3);
        let rescaled = rescale_for_fxp(&spec, &images, 3.5).unwrap();
        let maxima = calibration_maxima(&rescaled, &images).unwrap();
        for (i, m) in maxima.iter().enumerate() {
            assert!(*m <= 3.5 * 1.0001, "op {i} still produces {m}");
        }
    }

    #[test]
    fn rescaling_preserves_argmax() {
        let (spec, images) = trained_like_spec(7);
        let rescaled = rescale_for_fxp(&spec, &images, 3.5).unwrap();
        let a = spec_forward(&spec, &images).unwrap();
        let b = spec_forward(&rescaled, &images).unwrap();
        let n = images.shape()[0];
        let classes = 8;
        for k in 0..n {
            let argmax = |t: &Tensor| {
                t.data()[k * classes..(k + 1) * classes]
                    .iter()
                    .enumerate()
                    .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap()
            };
            assert_eq!(argmax(&a), argmax(&b), "sample {k}");
        }
    }

    #[test]
    fn logits_scaled_by_positive_constant() {
        let (spec, images) = trained_like_spec(9);
        let rescaled = rescale_for_fxp(&spec, &images, 3.5).unwrap();
        let a = spec_forward(&spec, &images).unwrap();
        let b = spec_forward(&rescaled, &images).unwrap();
        // Ratio must be constant across all logits (where a is not ~0).
        let mut ratio = None;
        for (x, y) in a.data().iter().zip(b.data()) {
            if x.abs() > 1e-3 {
                let r = y / x;
                match ratio {
                    None => ratio = Some(r),
                    Some(r0) => assert!(
                        (r - r0).abs() < 1e-3 * r0.abs().max(1.0),
                        "ratio drifted: {r0} vs {r}"
                    ),
                }
            }
        }
        assert!(ratio.unwrap() > 0.0);
    }

    #[test]
    fn residual_group_structure() {
        let model = MicroResNet::new(SynthSpec::SynthS, 1);
        let spec = model.to_spec();
        let groups = scale_groups(&spec).unwrap();
        // ops: conv relu | begin conv relu conv add relu | pool conv
        //      relu | begin conv relu conv add relu | gap dense
        // The add output (idx 6) must share the stem conv's group
        // (idx 0), and the second in-block conv (idx 5) likewise.
        assert_eq!(groups[0], groups[6]);
        assert_eq!(groups[5], groups[0]);
        // conv1 in block gets its own group.
        assert_ne!(groups[3], groups[0]);
        // Final dense is its own group.
        assert_eq!(groups.last(), groups.last());
    }

    #[test]
    fn validation_errors() {
        let (spec, images) = trained_like_spec(1);
        assert!(rescale_for_fxp(&spec, &images, 0.0).is_err());
        assert!(rescale_for_fxp(&spec, &Tensor::zeros(&[0, 1, 12, 12]), 3.5).is_err());

        let bad = NetworkSpec {
            ops: vec![SpecOp::ResidualBegin],
            input_shape: [1, 12, 12],
            classes: 8,
        };
        assert!(scale_groups(&bad).is_err());
        let bad = NetworkSpec {
            ops: vec![SpecOp::ResidualBegin, SpecOp::ResidualAdd],
            input_shape: [1, 12, 12],
            classes: 8,
        };
        assert!(scale_groups(&bad).is_err());
    }
}

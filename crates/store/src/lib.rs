//! Content-addressed, versioned on-disk artifact store.
//!
//! The expensive intermediates of the GENIEx pipeline — circuit-solver
//! truth datasets, trained surrogate MLPs, trained vision models — are
//! pure functions of their producing configuration and seed. This crate
//! caches them under `results/store/` so a warm rerun of the figure
//! binaries skips straight to the cheap parts.
//!
//! Like `parallel` and `telemetry`, the crate has no external
//! dependencies (it depends only on the in-workspace `telemetry` crate
//! for counters and timers).
//!
//! # Keys
//!
//! An artifact is addressed by a 128-bit digest ([`Key`]) of its kind
//! tag plus a *canonical serialization* of everything that determines
//! its bytes: the producing config (via the [`Canonical`] trait, which
//! the workspace config types implement), the seed, and the crate's
//! [`FORMAT_VERSION`]/[`SCHEMA_VERSION`]. Change any field — a
//! resistance, an epoch count, a seed — and the key changes; bump
//! [`SCHEMA_VERSION`] when a payload serialization changes and every
//! old entry is invalidated at once.
//!
//! # Integrity
//!
//! Entries are single files (`<root>/<kind>/<key>.gxa`) with a magic
//! header, version fields, and an FNV-1a checksum over the payload.
//! Writes are atomic (unique temp file, fsync, rename); damaged
//! entries are quarantined, never re-read, and never panic the loader.
//!
//! # Modes
//!
//! The `GENIEX_STORE` environment variable gates everything:
//! `off` (no caching), `read` (hit the cache, never write), and
//! `readwrite` (default). See [`Mode`].
//!
//! # Example
//!
//! ```
//! use store::{Canonical, Key, KeyBuilder, Mode, Store};
//!
//! struct SolverConfig {
//!     rows: usize,
//!     r_on: f64,
//!     seed: u64,
//! }
//!
//! impl Canonical for SolverConfig {
//!     fn canonicalize(&self, key: &mut KeyBuilder) {
//!         key.usize("rows", self.rows)
//!             .f64("r_on", self.r_on)
//!             .u64("seed", self.seed);
//!     }
//! }
//!
//! let config = SolverConfig { rows: 16, r_on: 100e3, seed: 7 };
//! let mut builder = KeyBuilder::new(*b"dset");
//! config.canonicalize(&mut builder);
//! let key: Key = builder.finish();
//!
//! let dir = std::env::temp_dir().join(format!("store-doc-{}", std::process::id()));
//! let store = Store::with_mode(&dir, Mode::ReadWrite);
//! if store.load(&key).is_none() {
//!     let expensive_result = vec![1u8, 2, 3]; // ... solve circuits ...
//!     store.save(&key, &expensive_result).ok();
//! }
//! assert_eq!(store.load(&key), Some(vec![1, 2, 3]));
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod format;
pub mod key;
#[allow(clippy::module_inception)]
pub mod store;

/// Container-layout revision; bump when the on-disk header changes.
pub const FORMAT_VERSION: u32 = 1;
/// Payload-serialization revision; bump when any cached artifact's
/// byte layout changes (invalidates every existing entry).
pub const SCHEMA_VERSION: u32 = 1;

pub use format::{decode, encode, DecodeError, HEADER_LEN, MAGIC};
pub use key::{fnv1a64, Canonical, Key, KeyBuilder, Kind};
pub use store::{Entry, Mode, Store, VerifyReport};

/// Kind tag for xbar truth datasets (`core::dataset`).
pub const KIND_DATASET: Kind = *b"dset";
/// Kind tag for trained GENIEx surrogates (`core::surrogate`).
pub const KIND_SURROGATE: Kind = *b"srgt";
/// Kind tag for trained vision models (`vision::models`).
pub const KIND_VISION_MODEL: Kind = *b"vmdl";
/// Kind tag for cached sweep/solver result blobs (`xbar::sweep`).
pub const KIND_SWEEP: Kind = *b"swep";

/// Builds a key for `kind` from a [`Canonical`] config in one call.
pub fn key_of(kind: Kind, config: &dyn Canonical) -> Key {
    let mut builder = KeyBuilder::new(kind);
    config.canonicalize(&mut builder);
    builder.finish()
}

//! The on-disk store: directory layout, atomic writes, quarantine.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime};

use crate::format::{self, DecodeError};
use crate::key::Key;

/// What the store is allowed to do, from the `GENIEX_STORE` knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Never touch the disk: every load misses, every save is dropped.
    Off,
    /// Load cached artifacts but never write new ones (reproducibility
    /// runs: a miss recomputes without polluting the cache).
    Read,
    /// Full caching (the default).
    #[default]
    ReadWrite,
}

impl Mode {
    /// Parses a `GENIEX_STORE` value; `None` for unrecognized input.
    pub fn parse(value: &str) -> Option<Mode> {
        match value.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" | "disabled" => Some(Mode::Off),
            "read" | "ro" | "readonly" => Some(Mode::Read),
            "readwrite" | "rw" | "on" | "1" => Some(Mode::ReadWrite),
            _ => None,
        }
    }

    /// Resolves the mode from the `GENIEX_STORE` environment variable
    /// (default [`Mode::ReadWrite`]; unrecognized values warn once on
    /// stderr and fall back to the default).
    pub fn from_env() -> Mode {
        match std::env::var("GENIEX_STORE") {
            Ok(value) => Mode::parse(&value).unwrap_or_else(|| {
                eprintln!(
                    "[store] unrecognized GENIEX_STORE={value:?} \
                     (expected off|read|readwrite); defaulting to readwrite"
                );
                Mode::ReadWrite
            }),
            Err(_) => Mode::ReadWrite,
        }
    }

    /// Human-readable name (`off`/`read`/`readwrite`).
    pub fn name(&self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::Read => "read",
            Mode::ReadWrite => "readwrite",
        }
    }

    fn can_read(&self) -> bool {
        !matches!(self, Mode::Off)
    }

    fn can_write(&self) -> bool {
        matches!(self, Mode::ReadWrite)
    }
}

/// One artifact on disk, as reported by [`Store::entries`].
#[derive(Debug, Clone)]
pub struct Entry {
    /// Artifact kind (directory name).
    pub kind: String,
    /// 32-hex-digit key.
    pub key_hex: String,
    /// File size in bytes (header + payload).
    pub bytes: u64,
    /// Last-modified time, when the filesystem reports one.
    pub modified: Option<SystemTime>,
    /// Full path of the entry.
    pub path: PathBuf,
}

/// Outcome of [`Store::verify`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Entries that decoded cleanly.
    pub ok: usize,
    /// Entries from an older format/schema revision.
    pub stale: usize,
    /// Damaged entries (moved to `quarantine/` in readwrite mode).
    pub corrupt: usize,
}

/// Telemetry handles, resolved once per store.
struct StoreMetrics {
    hits: std::sync::Arc<telemetry::Counter>,
    misses: std::sync::Arc<telemetry::Counter>,
    writes: std::sync::Arc<telemetry::Counter>,
    corrupt: std::sync::Arc<telemetry::Counter>,
    stale: std::sync::Arc<telemetry::Counter>,
    load_seconds: std::sync::Arc<telemetry::Timer>,
    save_seconds: std::sync::Arc<telemetry::Timer>,
}

impl StoreMetrics {
    fn new() -> Self {
        StoreMetrics {
            hits: telemetry::counter("store.hit"),
            misses: telemetry::counter("store.miss"),
            writes: telemetry::counter("store.write"),
            corrupt: telemetry::counter("store.corrupt"),
            stale: telemetry::counter("store.stale"),
            load_seconds: telemetry::timer("store.load_seconds"),
            save_seconds: telemetry::timer("store.save_seconds"),
        }
    }
}

/// A content-addressed artifact store rooted at one directory.
///
/// Layout:
///
/// ```text
/// <root>/<kind>/<key-hex>.gxa     # one artifact per file
/// <root>/tmp/                     # in-flight writes (temp + rename)
/// <root>/quarantine/              # damaged entries, kept for autopsy
/// ```
///
/// Loads and saves are race-safe across processes: writes land under
/// unique temp names and are atomically renamed into place, so a
/// reader never observes a partial file, and a killed run leaves at
/// worst an orphaned temp file that [`Store::gc`] sweeps up.
pub struct Store {
    root: PathBuf,
    mode: Mode,
    metrics: StoreMetrics,
    tmp_seq: AtomicU64,
}

impl Store {
    /// Opens (creating directories lazily) a store rooted at `root`,
    /// with the mode taken from `GENIEX_STORE`.
    pub fn open(root: impl Into<PathBuf>) -> Store {
        Store::with_mode(root, Mode::from_env())
    }

    /// Opens a store with an explicit mode (tests, tooling).
    pub fn with_mode(root: impl Into<PathBuf>, mode: Mode) -> Store {
        Store {
            root: root.into(),
            mode,
            metrics: StoreMetrics::new(),
            tmp_seq: AtomicU64::new(0),
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The store's operating mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Path the artifact for `key` lives at (whether or not it exists).
    pub fn path_for(&self, key: &Key) -> PathBuf {
        self.root
            .join(key.kind_str())
            .join(format!("{}.gxa", key.hex()))
    }

    fn emit(&self, outcome: &str, key: &Key, bytes: usize) {
        telemetry::emit(
            "store",
            &format!("store.{outcome}"),
            vec![
                ("kind".into(), telemetry::Json::from(key.kind_str())),
                ("key".into(), telemetry::Json::from(key.hex().as_str())),
                ("bytes".into(), telemetry::Json::from(bytes as u64)),
            ],
        );
    }

    /// Loads and validates the artifact for `key`. Returns the payload
    /// on a hit; `None` on a miss, a stale entry, a damaged entry
    /// (quarantined in readwrite mode), or when the mode forbids reads.
    /// Never panics on damaged input.
    pub fn load(&self, key: &Key) -> Option<Vec<u8>> {
        if !self.mode.can_read() {
            return None;
        }
        let start = Instant::now();
        let path = self.path_for(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => {
                self.metrics.misses.inc();
                self.emit("miss", key, 0);
                return None;
            }
        };
        match format::decode(key.kind, &bytes) {
            Ok(payload) => {
                let payload = payload.to_vec();
                self.metrics.hits.inc();
                self.metrics.load_seconds.record(start.elapsed());
                self.emit("hit", key, payload.len());
                Some(payload)
            }
            Err(DecodeError::Stale { .. }) => {
                self.metrics.stale.inc();
                self.metrics.misses.inc();
                self.emit("stale", key, bytes.len());
                // A later save overwrites the stale file in place.
                None
            }
            Err(error) => {
                self.metrics.corrupt.inc();
                self.metrics.misses.inc();
                self.emit("corrupt", key, bytes.len());
                eprintln!("[store] {}: {error}", path.display());
                if self.mode.can_write() {
                    if let Err(quarantine_error) = self.quarantine(&path) {
                        eprintln!(
                            "[store] failed to quarantine {}: {quarantine_error}",
                            path.display()
                        );
                    }
                }
                None
            }
        }
    }

    /// Saves an artifact. Returns `true` if the entry was written
    /// (false when the mode forbids writes).
    ///
    /// The write is atomic: the container goes to a unique temp file
    /// in `<root>/tmp` which is fsynced and renamed into place, so a
    /// concurrent reader (or a kill -9 mid-write) can never observe a
    /// partial entry.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (callers treat the store as best-effort
    /// and may ignore them).
    pub fn save(&self, key: &Key, payload: &[u8]) -> io::Result<bool> {
        if !self.mode.can_write() {
            return Ok(false);
        }
        let start = Instant::now();
        let container = format::encode(key.kind, payload);
        let final_path = self.path_for(key);
        if let Some(parent) = final_path.parent() {
            fs::create_dir_all(parent)?;
        }
        let tmp_dir = self.root.join("tmp");
        fs::create_dir_all(&tmp_dir)?;
        let tmp_path = tmp_dir.join(format!(
            "{}-{}-{}.part",
            key.hex(),
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut file = fs::File::create(&tmp_path)?;
            file.write_all(&container)?;
            file.sync_all()?;
        }
        match fs::rename(&tmp_path, &final_path) {
            Ok(()) => {}
            Err(error) => {
                let _ = fs::remove_file(&tmp_path);
                return Err(error);
            }
        }
        self.metrics.writes.inc();
        self.metrics.save_seconds.record(start.elapsed());
        self.emit("write", key, payload.len());
        Ok(true)
    }

    fn quarantine(&self, path: &Path) -> io::Result<()> {
        let dir = self.root.join("quarantine");
        fs::create_dir_all(&dir)?;
        let stem = path.file_name().and_then(|n| n.to_str()).unwrap_or("entry");
        let kind = path
            .parent()
            .and_then(|p| p.file_name())
            .and_then(|n| n.to_str())
            .unwrap_or("unknown");
        let unix = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        fs::rename(path, dir.join(format!("{kind}-{stem}-{unix}.corrupt")))
    }

    /// Lists every artifact currently in the store (quarantine and
    /// temp files excluded), sorted by kind then key.
    ///
    /// # Errors
    ///
    /// Propagates directory-walk I/O failures (a missing root is an
    /// empty store, not an error).
    pub fn entries(&self) -> io::Result<Vec<Entry>> {
        let mut out = Vec::new();
        let kinds = match fs::read_dir(&self.root) {
            Ok(iter) => iter,
            Err(error) if error.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(error) => return Err(error),
        };
        for kind_dir in kinds {
            let kind_dir = kind_dir?;
            let kind = kind_dir.file_name().to_string_lossy().into_owned();
            if kind == "tmp" || kind == "quarantine" || !kind_dir.file_type()?.is_dir() {
                continue;
            }
            for file in fs::read_dir(kind_dir.path())? {
                let file = file?;
                let name = file.file_name().to_string_lossy().into_owned();
                let Some(key_hex) = name.strip_suffix(".gxa") else {
                    continue;
                };
                let meta = file.metadata()?;
                out.push(Entry {
                    kind: kind.clone(),
                    key_hex: key_hex.to_string(),
                    bytes: meta.len(),
                    modified: meta.modified().ok(),
                    path: file.path(),
                });
            }
        }
        out.sort_by(|a, b| (&a.kind, &a.key_hex).cmp(&(&b.kind, &b.key_hex)));
        Ok(out)
    }

    /// Decodes every entry: damaged ones are quarantined (readwrite
    /// mode) and counted, stale ones counted.
    ///
    /// # Errors
    ///
    /// Propagates directory-walk I/O failures.
    pub fn verify(&self) -> io::Result<VerifyReport> {
        let mut report = VerifyReport::default();
        for entry in self.entries()? {
            let kind: [u8; 4] = match entry.kind.as_bytes().try_into() {
                Ok(kind) => kind,
                Err(_) => {
                    report.corrupt += 1;
                    continue;
                }
            };
            let bytes = fs::read(&entry.path)?;
            match format::decode(kind, &bytes) {
                Ok(_) => report.ok += 1,
                Err(DecodeError::Stale { .. }) => report.stale += 1,
                Err(_) => {
                    report.corrupt += 1;
                    if self.mode.can_write() {
                        let _ = self.quarantine(&entry.path);
                    }
                }
            }
        }
        Ok(report)
    }

    /// Removes entries (and orphaned temp files). With `older_than`,
    /// only entries whose mtime is further in the past are removed;
    /// without it, everything goes. Returns `(files_removed,
    /// bytes_freed)`.
    ///
    /// # Errors
    ///
    /// Propagates directory-walk I/O failures.
    pub fn gc(&self, older_than: Option<Duration>) -> io::Result<(usize, u64)> {
        let mut removed = 0usize;
        let mut freed = 0u64;
        let now = SystemTime::now();
        for entry in self.entries()? {
            let expired = match older_than {
                None => true,
                Some(age) => entry
                    .modified
                    .and_then(|m| now.duration_since(m).ok())
                    .is_some_and(|elapsed| elapsed > age),
            };
            if expired && fs::remove_file(&entry.path).is_ok() {
                removed += 1;
                freed += entry.bytes;
            }
        }
        // Orphaned in-flight writes from killed runs.
        if let Ok(tmp) = fs::read_dir(self.root.join("tmp")) {
            for file in tmp.flatten() {
                let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
                if fs::remove_file(file.path()).is_ok() {
                    removed += 1;
                    freed += bytes;
                }
            }
        }
        Ok((removed, freed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyBuilder;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "geniex-store-test-{tag}-{}-{}",
            std::process::id(),
            telemetry::current_thread_id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(kind: [u8; 4], seed: u64) -> Key {
        let mut builder = KeyBuilder::new(kind);
        builder.u64("seed", seed);
        builder.finish()
    }

    #[test]
    fn save_load_round_trip() {
        let root = temp_root("roundtrip");
        let store = Store::with_mode(&root, Mode::ReadWrite);
        let k = key(*b"dset", 1);
        assert!(store.load(&k).is_none());
        assert!(store.save(&k, b"payload").unwrap());
        assert_eq!(store.load(&k).unwrap(), b"payload");
        // Overwrite with new content under the same key.
        assert!(store.save(&k, b"payload2").unwrap());
        assert_eq!(store.load(&k).unwrap(), b"payload2");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn modes_gate_reads_and_writes() {
        let root = temp_root("modes");
        let rw = Store::with_mode(&root, Mode::ReadWrite);
        let k = key(*b"dset", 2);
        assert!(rw.save(&k, b"data").unwrap());

        let read_only = Store::with_mode(&root, Mode::Read);
        assert_eq!(read_only.load(&k).unwrap(), b"data");
        let k2 = key(*b"dset", 3);
        assert!(!read_only.save(&k2, b"other").unwrap());
        assert!(read_only.load(&k2).is_none());

        let off = Store::with_mode(&root, Mode::Off);
        assert!(off.load(&k).is_none());
        assert!(!off.save(&k2, b"other").unwrap());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(Mode::parse("off"), Some(Mode::Off));
        assert_eq!(Mode::parse("READ"), Some(Mode::Read));
        assert_eq!(Mode::parse(" rw "), Some(Mode::ReadWrite));
        assert_eq!(Mode::parse("readwrite"), Some(Mode::ReadWrite));
        assert_eq!(Mode::parse("sideways"), None);
        assert_eq!(Mode::default(), Mode::ReadWrite);
    }

    #[test]
    fn truncated_entry_is_quarantined_not_panicking() {
        let root = temp_root("truncate");
        let store = Store::with_mode(&root, Mode::ReadWrite);
        let k = key(*b"srgt", 4);
        store
            .save(&k, b"a long enough payload to truncate")
            .unwrap();
        let path = store.path_for(&k);
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();

        assert!(store.load(&k).is_none());
        assert!(!path.exists(), "corrupt entry still in place");
        let quarantined: Vec<_> = fs::read_dir(root.join("quarantine"))
            .unwrap()
            .flatten()
            .collect();
        assert_eq!(quarantined.len(), 1);
        // The store recovers: a fresh save works again.
        assert!(store.save(&k, b"fresh").unwrap());
        assert_eq!(store.load(&k).unwrap(), b"fresh");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn bit_flip_is_quarantined() {
        let root = temp_root("bitflip");
        let store = Store::with_mode(&root, Mode::ReadWrite);
        let k = key(*b"vmdl", 5);
        store.save(&k, b"model weights here").unwrap();
        let path = store.path_for(&k);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(&k).is_none());
        assert!(!path.exists());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn read_mode_reports_corruption_without_mutating() {
        let root = temp_root("ro-corrupt");
        let rw = Store::with_mode(&root, Mode::ReadWrite);
        let k = key(*b"dset", 6);
        rw.save(&k, b"data").unwrap();
        let path = rw.path_for(&k);
        fs::write(&path, b"garbage").unwrap();

        let ro = Store::with_mode(&root, Mode::Read);
        assert!(ro.load(&k).is_none());
        assert!(path.exists(), "read mode must not move files");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn version_mismatch_is_rejected_as_miss() {
        let root = temp_root("stale");
        let store = Store::with_mode(&root, Mode::ReadWrite);
        let k = key(*b"dset", 7);
        store.save(&k, b"data").unwrap();
        let path = store.path_for(&k);
        let mut bytes = fs::read(&path).unwrap();
        bytes[16] = bytes[16].wrapping_add(1); // schema_version
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(&k).is_none());
        assert!(path.exists(), "stale entries are kept for overwrite");
        // A save replaces the stale entry and the key hits again.
        store.save(&k, b"data").unwrap();
        assert_eq!(store.load(&k).unwrap(), b"data");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn truncated_header_counts_corrupt_and_quarantines() {
        let root = temp_root("short-header");
        let store = Store::with_mode(&root, Mode::ReadWrite);
        let k = key(*b"dset", 11);
        store.save(&k, b"payload behind a full header").unwrap();
        let path = store.path_for(&k);
        let full = fs::read(&path).unwrap();
        // Cut inside the 36-byte header itself (not just the payload).
        fs::write(&path, &full[..crate::format::HEADER_LEN / 2]).unwrap();

        let _guard = telemetry::test_lock();
        telemetry::set_enabled(true);
        let corrupt = telemetry::counter("store.corrupt");
        let misses = telemetry::counter("store.miss");
        let hits = telemetry::counter("store.hit");
        let (corrupt0, misses0, hits0) = (corrupt.get(), misses.get(), hits.get());

        assert!(store.load(&k).is_none());
        // Deltas are >=: other tests in this process may also be
        // touching the global counters while telemetry is enabled.
        assert!(corrupt.get() > corrupt0, "store.corrupt must count");
        assert!(misses.get() > misses0, "a corrupt load is a miss");
        assert!(!path.exists(), "truncated header must be quarantined");
        let quarantined = fs::read_dir(root.join("quarantine")).unwrap().count();
        assert_eq!(quarantined, 1);

        // The slot is usable again: a fresh save hits on reload.
        assert!(store.save(&k, b"regenerated").unwrap());
        assert_eq!(store.load(&k).unwrap(), b"regenerated");
        assert!(hits.get() > hits0, "store.hit must count");
        telemetry::set_enabled(false);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn schema_bump_counts_stale_and_warm_run_regenerates() {
        let root = temp_root("stale-regen");
        let store = Store::with_mode(&root, Mode::ReadWrite);
        let k = key(*b"srgt", 12);
        store.save(&k, b"old-schema artifact").unwrap();
        let path = store.path_for(&k);
        let mut bytes = fs::read(&path).unwrap();
        bytes[16] = bytes[16].wrapping_add(1); // schema_version
        fs::write(&path, &bytes).unwrap();

        let _guard = telemetry::test_lock();
        telemetry::set_enabled(true);
        let stale = telemetry::counter("store.stale");
        let writes = telemetry::counter("store.write");
        let (stale0, writes0) = (stale.get(), writes.get());

        // The warm-run idiom every producer uses: try the cache, fall
        // back to regeneration, save for next time.
        let payload = match store.load(&k) {
            Some(cached) => cached,
            None => {
                let regenerated = b"regenerated artifact".to_vec();
                store.save(&k, &regenerated).unwrap();
                regenerated
            }
        };
        assert_eq!(payload, b"regenerated artifact");
        assert!(stale.get() > stale0, "store.stale must count");
        assert!(writes.get() > writes0, "regeneration must re-save");
        assert!(path.exists(), "stale entries are overwritten in place");
        // Next warm run hits the regenerated entry.
        assert_eq!(store.load(&k).unwrap(), b"regenerated artifact");
        telemetry::set_enabled(false);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn entries_verify_and_gc() {
        let root = temp_root("maint");
        let store = Store::with_mode(&root, Mode::ReadWrite);
        store.save(&key(*b"dset", 8), b"one").unwrap();
        store.save(&key(*b"srgt", 9), b"two").unwrap();
        store.save(&key(*b"vmdl", 10), b"three").unwrap();

        let entries = store.entries().unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].kind, "dset");
        assert!(entries.iter().all(|e| e.key_hex.len() == 32));

        // Corrupt one entry; verify catches and quarantines it.
        fs::write(&entries[1].path, b"junk").unwrap();
        let report = store.verify().unwrap();
        assert_eq!(report.ok, 2);
        assert_eq!(report.corrupt, 1);
        assert_eq!(store.entries().unwrap().len(), 2);

        // Age-gated gc removes nothing for fresh files, then a full
        // gc drains the store.
        let (removed, _) = store.gc(Some(Duration::from_secs(3600))).unwrap();
        assert_eq!(removed, 0);
        let (removed, freed) = store.gc(None).unwrap();
        assert_eq!(removed, 2);
        assert!(freed > 0);
        assert!(store.entries().unwrap().is_empty());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_root_is_an_empty_store() {
        let root = temp_root("missing");
        let store = Store::with_mode(&root, Mode::ReadWrite);
        assert!(store.entries().unwrap().is_empty());
        assert_eq!(store.verify().unwrap(), VerifyReport::default());
        assert_eq!(store.gc(None).unwrap().0, 0);
    }
}

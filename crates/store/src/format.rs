//! The on-disk container format.
//!
//! Every artifact file is a fixed 36-byte header followed by the raw
//! payload:
//!
//! ```text
//! offset  size  field
//! 0       8     magic            b"GXSTORE\0"
//! 8       4     format_version   u32 LE (container layout revision)
//! 12      4     kind             4 ASCII bytes, e.g. "dset"
//! 16      4     schema_version   u32 LE (payload serialization revision)
//! 20      8     payload_len      u64 LE
//! 28      8     payload_fnv1a64  u64 LE, checksum over the payload
//! 36      ...   payload
//! ```
//!
//! Decoding distinguishes *stale* entries (right container, older
//! format/schema version — silently invalidated) from *corrupt* ones
//! (bad magic, truncation, length or checksum mismatch — quarantined
//! so a damaged file is kept for inspection but never re-read).

use crate::key::{fnv1a64, Kind};

/// Leading magic bytes of every artifact file.
pub const MAGIC: [u8; 8] = *b"GXSTORE\0";
/// Total header size in bytes.
pub const HEADER_LEN: usize = 36;

/// Why a container failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Valid container written by an older (or newer) format or schema
    /// revision; the entry is stale, not damaged.
    Stale {
        /// Format version found in the header.
        format_version: u32,
        /// Schema version found in the header.
        schema_version: u32,
    },
    /// The header names a different artifact kind than the key asked
    /// for (possible only if a file was renamed by hand).
    WrongKind(Kind),
    /// Damaged bytes: bad magic, truncation, or checksum mismatch.
    Corrupt(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Stale {
                format_version,
                schema_version,
            } => write!(
                f,
                "stale entry (format v{format_version}, schema v{schema_version}; \
                 current v{}/v{})",
                crate::FORMAT_VERSION,
                crate::SCHEMA_VERSION
            ),
            DecodeError::WrongKind(kind) => {
                write!(
                    f,
                    "kind mismatch: file holds {:?}",
                    std::str::from_utf8(kind).unwrap_or("????")
                )
            }
            DecodeError::Corrupt(why) => write!(f, "corrupt entry: {why}"),
        }
    }
}

/// Wraps a payload in the container format.
pub fn encode(kind: Kind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&crate::FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&kind);
    out.extend_from_slice(&crate::SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn u32_at(bytes: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"))
}

fn u64_at(bytes: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("8 bytes"))
}

/// Validates a container and returns its payload.
///
/// # Errors
///
/// [`DecodeError::Corrupt`] on damage, [`DecodeError::Stale`] on a
/// version mismatch, [`DecodeError::WrongKind`] on a kind mismatch.
pub fn decode(kind: Kind, bytes: &[u8]) -> Result<&[u8], DecodeError> {
    if bytes.len() < HEADER_LEN {
        return Err(DecodeError::Corrupt(format!(
            "file is {} bytes, header needs {HEADER_LEN}",
            bytes.len()
        )));
    }
    if bytes[..8] != MAGIC {
        return Err(DecodeError::Corrupt("bad magic".into()));
    }
    let format_version = u32_at(bytes, 8);
    let file_kind: Kind = bytes[12..16].try_into().expect("4 bytes");
    let schema_version = u32_at(bytes, 16);
    if format_version != crate::FORMAT_VERSION || schema_version != crate::SCHEMA_VERSION {
        return Err(DecodeError::Stale {
            format_version,
            schema_version,
        });
    }
    if file_kind != kind {
        return Err(DecodeError::WrongKind(file_kind));
    }
    let payload_len = u64_at(bytes, 20) as usize;
    let payload = &bytes[HEADER_LEN..];
    if payload.len() != payload_len {
        return Err(DecodeError::Corrupt(format!(
            "payload is {} bytes, header declares {payload_len}",
            payload.len()
        )));
    }
    let expected = u64_at(bytes, 28);
    let actual = fnv1a64(payload);
    if expected != actual {
        return Err(DecodeError::Corrupt(format!(
            "checksum mismatch: header {expected:016x}, payload {actual:016x}"
        )));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let payload = b"hello artifact";
        let file = encode(*b"dset", payload);
        assert_eq!(decode(*b"dset", &file).unwrap(), payload);
        assert_eq!(file.len(), HEADER_LEN + payload.len());
    }

    #[test]
    fn empty_payload_round_trips() {
        let file = encode(*b"vmdl", b"");
        assert_eq!(decode(*b"vmdl", &file).unwrap(), b"");
    }

    #[test]
    fn truncation_is_corrupt() {
        let file = encode(*b"dset", b"0123456789");
        for cut in [0, 5, HEADER_LEN - 1, file.len() - 1] {
            assert!(
                matches!(decode(*b"dset", &file[..cut]), Err(DecodeError::Corrupt(_))),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn bit_flips_are_corrupt() {
        let clean = encode(*b"dset", b"payload bytes");
        // Flip one bit in the magic, the checksum, and the payload.
        for position in [0, 28, HEADER_LEN + 3] {
            let mut file = clean.clone();
            file[position] ^= 0x10;
            assert!(
                matches!(decode(*b"dset", &file), Err(DecodeError::Corrupt(_))),
                "flip at {position} not detected"
            );
        }
    }

    #[test]
    fn version_mismatch_is_stale_not_corrupt() {
        let mut file = encode(*b"dset", b"payload");
        file[8] = file[8].wrapping_add(1); // format_version
        assert!(matches!(
            decode(*b"dset", &file),
            Err(DecodeError::Stale { .. })
        ));
        let mut file = encode(*b"dset", b"payload");
        file[16] = file[16].wrapping_add(1); // schema_version
        assert!(matches!(
            decode(*b"dset", &file),
            Err(DecodeError::Stale { .. })
        ));
    }

    #[test]
    fn kind_mismatch_detected() {
        let file = encode(*b"dset", b"payload");
        assert_eq!(
            decode(*b"srgt", &file),
            Err(DecodeError::WrongKind(*b"dset"))
        );
    }
}

//! Content-addressed keys: canonical hashing of producing configs.
//!
//! An artifact's key is a 128-bit digest of everything that determines
//! its bytes: the artifact kind, the store format and code-schema
//! versions, and a *canonical serialization* of the producing
//! configuration (every field tagged by name, every number reduced to
//! a fixed-width little-endian encoding). Two configs that differ in
//! any field — including a nested one, or just the seed — produce
//! different keys; the same config always produces the same key, on
//! any platform.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Offset basis of the second, independent stream (the first basis
/// folded over an arbitrary constant, so the two lanes decorrelate).
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142;

/// One FNV-1a 64 step.
#[inline]
fn fnv_step(hash: u64, byte: u8) -> u64 {
    (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME)
}

/// FNV-1a 64 of a byte slice (used for payload checksums).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = fnv_step(h, b);
    }
    h
}

/// Artifact kind tag: exactly 4 ASCII bytes, embedded in both the key
/// and the on-disk container header (e.g. `*b"dset"`).
pub type Kind = [u8; 4];

/// A 128-bit content key plus the artifact kind it addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key {
    /// Artifact kind this key addresses.
    pub kind: Kind,
    /// High 64 bits of the digest.
    pub hi: u64,
    /// Low 64 bits of the digest.
    pub lo: u64,
}

impl Key {
    /// 32-hex-digit rendering (the on-disk file stem).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Kind tag as a str (kind tags are always ASCII).
    pub fn kind_str(&self) -> &str {
        std::str::from_utf8(&self.kind).unwrap_or("????")
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.kind_str(), self.hex())
    }
}

/// Incremental builder of a [`Key`]: feed it the producing config,
/// field by field, then [`finish`](KeyBuilder::finish).
///
/// Every value is prefixed by its field name and a type tag, so
/// `("a", 1u64), ("b", 2u64)` and `("a", 12u64), ("b", u64::MAX)`
/// cannot collide by concatenation, and reordering fields changes the
/// key. Floats hash their IEEE-754 bit patterns (`-0.0` is normalized
/// to `0.0` so the two equal values share a key).
#[derive(Debug, Clone)]
pub struct KeyBuilder {
    kind: Kind,
    a: u64,
    b: u64,
}

impl KeyBuilder {
    /// Starts a key for one artifact kind. The kind, the container
    /// format version, and the code-schema version are folded in up
    /// front, so bumping [`crate::SCHEMA_VERSION`] invalidates every
    /// existing key at once.
    pub fn new(kind: Kind) -> Self {
        let mut builder = KeyBuilder {
            kind,
            a: FNV_OFFSET,
            b: FNV_OFFSET_B,
        };
        builder.raw(&kind);
        builder.push_u32(crate::FORMAT_VERSION);
        builder.push_u32(crate::SCHEMA_VERSION);
        builder
    }

    fn raw(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = fnv_step(self.a, byte);
            // The second lane sees the bit-rotated byte so the two
            // digests disagree on every input longer than zero bytes.
            self.b = fnv_step(self.b, byte.rotate_left(3));
        }
    }

    fn tag(&mut self, name: &str, type_tag: u8) {
        self.push_u32(name.len() as u32);
        self.raw(name.as_bytes());
        self.raw(&[type_tag]);
    }

    fn push_u32(&mut self, v: u32) {
        self.raw(&v.to_le_bytes());
    }

    /// Hashes an unsigned integer field.
    pub fn u64(&mut self, name: &str, v: u64) -> &mut Self {
        self.tag(name, b'u');
        self.raw(&v.to_le_bytes());
        self
    }

    /// Hashes a `usize` field (encoded as `u64`, platform-independent).
    pub fn usize(&mut self, name: &str, v: usize) -> &mut Self {
        self.u64(name, v as u64)
    }

    /// Hashes a signed integer field.
    pub fn i64(&mut self, name: &str, v: i64) -> &mut Self {
        self.tag(name, b'i');
        self.raw(&v.to_le_bytes());
        self
    }

    /// Hashes an `f64` field by bit pattern (`-0.0` → `0.0`).
    pub fn f64(&mut self, name: &str, v: f64) -> &mut Self {
        let v = if v == 0.0 { 0.0 } else { v };
        self.tag(name, b'f');
        self.raw(&v.to_bits().to_le_bytes());
        self
    }

    /// Hashes an `f32` field by bit pattern (`-0.0` → `0.0`).
    pub fn f32(&mut self, name: &str, v: f32) -> &mut Self {
        let v = if v == 0.0 { 0.0 } else { v };
        self.tag(name, b'g');
        self.raw(&v.to_bits().to_le_bytes());
        self
    }

    /// Hashes a boolean field.
    pub fn bool(&mut self, name: &str, v: bool) -> &mut Self {
        self.tag(name, b'b');
        self.raw(&[u8::from(v)]);
        self
    }

    /// Hashes a string field (length-prefixed, so adjacent strings
    /// cannot merge).
    pub fn str(&mut self, name: &str, v: &str) -> &mut Self {
        self.tag(name, b's');
        self.push_u32(v.len() as u32);
        self.raw(v.as_bytes());
        self
    }

    /// Hashes an opaque byte payload (e.g. a dataset's sample buffer,
    /// for content-derived keys).
    pub fn bytes(&mut self, name: &str, v: &[u8]) -> &mut Self {
        self.tag(name, b'y');
        self.push_u32(v.len() as u32);
        self.raw(v);
        self
    }

    /// Hashes a slice of `f64` values by bit pattern.
    pub fn f64_slice(&mut self, name: &str, v: &[f64]) -> &mut Self {
        self.tag(name, b'F');
        self.push_u32(v.len() as u32);
        for &x in v {
            let x = if x == 0.0 { 0.0 } else { x };
            self.raw(&x.to_bits().to_le_bytes());
        }
        self
    }

    /// Hashes a slice of `f32` values by bit pattern.
    pub fn f32_slice(&mut self, name: &str, v: &[f32]) -> &mut Self {
        self.tag(name, b'G');
        self.push_u32(v.len() as u32);
        for &x in v {
            let x = if x == 0.0 { 0.0 } else { x };
            self.raw(&x.to_bits().to_le_bytes());
        }
        self
    }

    /// Hashes a nested config that knows how to canonicalize itself.
    /// The field name scopes the nested fields, so two identical
    /// sub-configs under different names hash differently.
    pub fn nested(&mut self, name: &str, value: &dyn Canonical) -> &mut Self {
        self.tag(name, b'n');
        value.canonicalize(self);
        self.tag(name, b'e');
        self
    }

    /// Finalizes the digest.
    pub fn finish(&self) -> Key {
        Key {
            kind: self.kind,
            hi: self.a,
            lo: self.b,
        }
    }
}

/// A configuration that can write itself into a [`KeyBuilder`] in a
/// stable, versioned field order. Implemented by the producing-config
/// types across the workspace (`CrossbarParams`, `DatasetConfig`,
/// `TrainConfig`, `ArchConfig`, ...).
pub trait Canonical {
    /// Appends every field that influences the produced artifact.
    fn canonicalize(&self, key: &mut KeyBuilder);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn key_is_deterministic() {
        let mut a = KeyBuilder::new(*b"test");
        a.u64("rows", 8).f64("r_on", 100e3).str("tag", "rand");
        let mut b = KeyBuilder::new(*b"test");
        b.u64("rows", 8).f64("r_on", 100e3).str("tag", "rand");
        assert_eq!(a.finish(), b.finish());
        assert_eq!(a.finish().hex().len(), 32);
    }

    #[test]
    fn any_field_change_changes_key() {
        let base = {
            let mut k = KeyBuilder::new(*b"test");
            k.u64("rows", 8).f64("r_on", 100e3).bool("flag", true);
            k.finish()
        };
        let variants = [
            {
                let mut k = KeyBuilder::new(*b"test");
                k.u64("rows", 9).f64("r_on", 100e3).bool("flag", true);
                k.finish()
            },
            {
                let mut k = KeyBuilder::new(*b"test");
                k.u64("rows", 8).f64("r_on", 50e3).bool("flag", true);
                k.finish()
            },
            {
                let mut k = KeyBuilder::new(*b"test");
                k.u64("rows", 8).f64("r_on", 100e3).bool("flag", false);
                k.finish()
            },
            {
                let mut k = KeyBuilder::new(*b"diff");
                k.u64("rows", 8).f64("r_on", 100e3).bool("flag", true);
                k.finish()
            },
        ];
        for v in variants {
            assert_ne!(base, v);
        }
    }

    #[test]
    fn field_name_and_order_matter() {
        let mut a = KeyBuilder::new(*b"test");
        a.u64("x", 1).u64("y", 2);
        let mut b = KeyBuilder::new(*b"test");
        b.u64("y", 2).u64("x", 1);
        let mut c = KeyBuilder::new(*b"test");
        c.u64("z", 1).u64("y", 2);
        assert_ne!(a.finish(), b.finish());
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn negative_zero_is_normalized() {
        let mut a = KeyBuilder::new(*b"test");
        a.f64("v", 0.0).f32("w", 0.0);
        let mut b = KeyBuilder::new(*b"test");
        b.f64("v", -0.0).f32("w", -0.0);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn nested_configs_are_scoped() {
        struct Sub(u64);
        impl Canonical for Sub {
            fn canonicalize(&self, key: &mut KeyBuilder) {
                key.u64("v", self.0);
            }
        }
        let mut a = KeyBuilder::new(*b"test");
        a.nested("left", &Sub(1)).nested("right", &Sub(2));
        let mut b = KeyBuilder::new(*b"test");
        b.nested("left", &Sub(2)).nested("right", &Sub(1));
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn slices_are_length_prefixed() {
        let mut a = KeyBuilder::new(*b"test");
        a.f32_slice("s", &[1.0, 2.0]).f32_slice("t", &[3.0]);
        let mut b = KeyBuilder::new(*b"test");
        b.f32_slice("s", &[1.0]).f32_slice("t", &[2.0, 3.0]);
        assert_ne!(a.finish(), b.finish());
    }
}

//! Umbrella crate for the GENIEx reproduction workspace.
//!
//! This package exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`). It re-exports every
//! member crate so that examples and tests can reach the full stack
//! through a single dependency.
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! system inventory and per-experiment index.

pub use funcsim;
pub use geniex;
pub use linalg;
pub use nn;
pub use vision;
pub use xbar;
